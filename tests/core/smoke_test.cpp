// End-to-end smoke test: exercises the full public surface of the core
// list once, single-threaded, with a structural + refcount audit after
// every phase. Deeper per-operation tests live in the sibling files.
#include <gtest/gtest.h>

#include "lfll/core/audit.hpp"
#include "lfll/core/list.hpp"

namespace {

using list_t = lfll::valois_list<int>;
using cursor_t = list_t::cursor;

TEST(Smoke, EmptyListShape) {
    list_t list(16);
    auto report = lfll::audit_list(list);
    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.cells, 0u);
    EXPECT_EQ(report.aux_nodes, 1u);  // Fig. 4: First -> aux -> Last
    EXPECT_TRUE(list.empty_slow());
}

TEST(Smoke, InsertTraverseDelete) {
    list_t list(16);
    cursor_t c(list);
    EXPECT_TRUE(c.at_end());

    list.insert(c, 3);
    list.first(c);
    list.insert(c, 1);
    list.first(c);
    EXPECT_EQ(*c, 1);
    ASSERT_TRUE(list.next(c));
    EXPECT_EQ(*c, 3);
    ASSERT_TRUE(list.next(c));
    EXPECT_TRUE(c.at_end());
    EXPECT_FALSE(list.next(c));
    EXPECT_EQ(list.size_slow(), 2u);

    list.first(c);
    EXPECT_TRUE(list.try_delete(c));
    list.update(c);
    EXPECT_EQ(*c, 3);
    EXPECT_TRUE(list.try_delete(c));
    list.update(c);
    EXPECT_TRUE(c.at_end());

    c.reset();
    auto report = lfll::audit_list(list);
    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_EQ(report.cells, 0u);
    EXPECT_EQ(report.leaked, 0u);
}

}  // namespace
