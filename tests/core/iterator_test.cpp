// STL iterator facade and algorithm interop; skip-list range scans.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <numeric>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/core/iterator.hpp"
#include "lfll/core/list.hpp"
#include "lfll/dict/skip_list.hpp"

namespace {

using namespace lfll;

void append(valois_list<int>& list, int v) {
    valois_list<int>::cursor c(list);
    while (!c.at_end()) list.next(c);
    list.insert(c, v);
}

TEST(Iterator, RangeForVisitsAllInOrder) {
    valois_list<int> list(32);
    for (int v : {1, 2, 3, 4}) append(list, v);
    std::vector<int> seen;
    for (const int& v : range(list)) seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3, 4}));
}

TEST(Iterator, EmptyListYieldsNothing) {
    valois_list<int> list(8);
    auto r = range(list);
    EXPECT_EQ(r.begin(), r.end());
    int count = 0;
    for (const int& v : r) {
        (void)v;
        ++count;
    }
    EXPECT_EQ(count, 0);
}

TEST(Iterator, WorksWithStdAlgorithms) {
    valois_list<int> list(32);
    for (int v : {5, 10, 15}) append(list, v);
    auto r = range(list);
    EXPECT_EQ(std::accumulate(r.begin(), r.end(), 0), 30);
    EXPECT_NE(std::find(r.begin(), r.end(), 10), r.end());
    EXPECT_EQ(std::find(r.begin(), r.end(), 11), r.end());
    EXPECT_EQ(std::count_if(r.begin(), r.end(), [](int v) { return v > 5; }), 2);
}

TEST(Iterator, EqualityOnSameCell) {
    valois_list<int> list(8);
    append(list, 1);
    auto a = range(list).begin();
    auto b = range(list).begin();
    EXPECT_EQ(a, b);  // both on cell 1
    ++a;
    EXPECT_NE(a, b);
    EXPECT_EQ(a, range(list).end());
}

TEST(Iterator, SurvivesConcurrentStyleDeletionOfCurrentCell) {
    valois_list<int> list(16);
    for (int v : {1, 2, 3}) append(list, v);
    auto it = range(list).begin();
    ++it;  // on 2
    {
        valois_list<int>::cursor del(list);
        list.next(del);
        ASSERT_TRUE(list.try_delete(del));  // delete 2 out from under it
    }
    EXPECT_EQ(*it, 2);  // cell persistence
    ++it;
    EXPECT_EQ(*it, 3);  // traversal rejoins the live list
}

TEST(Scan, VisitsCellsInOrder) {
    valois_list<int> list(32);
    for (int v : {1, 2, 3}) append(list, v);
    std::vector<int> seen;
    list.scan([&](const int& v) {
        seen.push_back(v);
        return true;
    });
    EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(Scan, EarlyStopHaltsTraversal) {
    valois_list<int> list(32);
    for (int v : {1, 2, 3, 4}) append(list, v);
    int visits = 0;
    list.scan([&](const int& v) {
        ++visits;
        return v < 2;  // stop at 2
    });
    EXPECT_EQ(visits, 2);
}

TEST(Scan, EmptyListVisitsNothing) {
    valois_list<int> list(8);
    int visits = 0;
    list.scan([&](const int&) {
        ++visits;
        return true;
    });
    EXPECT_EQ(visits, 0);
}

TEST(Scan, BalancesReferences) {
    valois_list<int> list(16);
    for (int v : {5, 6}) append(list, v);
    list.scan([](const int&) { return true; });
    list.scan([](const int&) { return false; });  // early stop path too
    auto r = audit_list(list);
    EXPECT_TRUE(r.ok) << r.error;  // any unbalanced ref fails the audit
}

TEST(Scan, SafeAgainstConcurrentChurn) {
    valois_list<int> list(256);
    std::atomic<bool> stop{false};
    std::thread churner([&] {
        valois_list<int>::cursor c(list);
        std::uint64_t x = 1;
        while (!stop.load(std::memory_order_acquire)) {
            list.first(c);
            if (x++ % 2 == 0) {
                list.insert(c, 7);
            } else if (!c.at_end()) {
                list.try_delete(c);
            }
        }
        c.reset();
    });
    for (int i = 0; i < 300; ++i) {
        int bad = 0;
        list.scan([&](const int& v) {
            if (v != 7) ++bad;
            return true;
        });
        ASSERT_EQ(bad, 0);
    }
    stop.store(true, std::memory_order_release);
    churner.join();
}

TEST(SkipListRange, ScansExactlyTheWindow) {
    skip_list_map<int, int> m(1024, 8);
    for (int k = 0; k < 100; ++k) m.insert(k, k * 3);
    std::vector<int> keys;
    m.for_each_range(20, 30, [&](int k, int v) {
        EXPECT_EQ(v, k * 3);
        keys.push_back(k);
    });
    std::vector<int> expect(10);
    std::iota(expect.begin(), expect.end(), 20);
    EXPECT_EQ(keys, expect);
}

TEST(SkipListRange, EmptyWindowAndBoundaries) {
    skip_list_map<int, int> m(256, 6);
    for (int k : {10, 20, 30}) m.insert(k, k);
    int count = 0;
    m.for_each_range(11, 20, [&](int, int) { ++count; });
    EXPECT_EQ(count, 0);  // lo exclusive of 10, hi excludes 20
    std::vector<int> keys;
    m.for_each_range(10, 31, [&](int k, int) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<int>{10, 20, 30}));
    count = 0;
    m.for_each_range(100, 200, [&](int, int) { ++count; });
    EXPECT_EQ(count, 0);
}

}  // namespace
