// Per-thread SafeRead cache (node_pool sr_* machinery): reference
// accounting through eviction and flush, cross-incarnation
// invalidation after a cached cell recycles, the §5 audit's view of
// parked references, the enable/disable knobs, and a deterministic
// Zipf hit-rate check that the cache actually converts hot-key repeat
// visits into zero-RMW takes.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <utility>

#include "lfll/core/audit.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/primitives/rng.hpp"
#include "lfll/primitives/zipf.hpp"
#include "lfll/reclaim/epoch_policy.hpp"

namespace {

using namespace lfll;
using map_t = sorted_list_map<int, int>;
using pool_t = map_t::list_type::pool_type;

/// Cursor-based lookup through the batched mutator seek (find_from).
/// map::find() rides scan(), which takes no cursor and touches no
/// cache; the seek path — what insert/erase position through — is the
/// one that donates to and takes from the SafeRead cache, so these
/// tests drive it directly. Returns the value at `key`, if present.
std::optional<int> seek_find(map_t& map, int key) {
    map_t::cursor c(map.list());
    if (!map.find_from(key, c)) return std::nullopt;
    return (*c).second;
}

TEST(SafeReadCache, ParkAndTakeOnRepeatVisits) {
    pool_config cfg;
    cfg.initial_capacity = 64;
    cfg.saferead_cache = 1;
    pool_t pool(cfg);
    map_t map(pool);
    ASSERT_TRUE(pool.saferead_cache_enabled());
    for (int k = 0; k < 8; ++k) map.insert(k, k);
    const auto before = pool.saferead_cache_stats();
    for (int round = 0; round < 16; ++round) {
        auto v = seek_find(map, 3);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, 3);
    }
    const auto after = pool.saferead_cache_stats();
    // Repeat visits to the same position re-take the parked references
    // (seek -> reset parks the landing cells, the next seek takes them).
    EXPECT_GT(after.hits, before.hits);
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SafeReadCache, EvictionRoutesThroughDeferredReleaseAndBalances) {
    pool_config cfg;
    cfg.initial_capacity = 256;
    cfg.saferead_cache = 1;
    cfg.saferead_cache_size = 4;  // tiny: distinct landings must evict
    pool_t pool(cfg);
    map_t map(pool);
    for (int k = 0; k < 64; ++k) map.insert(k, k);
    const auto before = pool.saferead_cache_stats();
    // Land on many distinct cells: each seek parks its landing cells,
    // and a 4-entry cache must evict the LRU parked reference through
    // the deferred-release buffer (never a lost or doubled decrement).
    for (int k = 0; k < 64; k += 3) {
        ASSERT_TRUE(seek_find(map, k).has_value());
    }
    const auto after = pool.saferead_cache_stats();
    EXPECT_GT(after.evictions, before.evictions);
    // The audit flushes every thread's parked references and deferred
    // decrements itself; a miscounted eviction surfaces here as a
    // refcount imbalance on some cell.
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
    pool.flush_deferred_releases();
    EXPECT_EQ(pool.saferead_cache_pending(), 0u);
}

TEST(SafeReadCache, AuditBalancesWithEntriesStillParked) {
    pool_config cfg;
    cfg.initial_capacity = 64;
    cfg.saferead_cache = 1;
    pool_t pool(cfg);
    map_t map(pool);
    for (int k = 0; k < 8; ++k) map.insert(k, k);
    ASSERT_TRUE(seek_find(map, 5).has_value());
    // The seek's cursor reset parked live references; the audit must
    // account for them (its entry flush runs the real decrements) and
    // still balance every §5 count.
    ASSERT_GT(pool.saferead_cache_pending(), 0u);
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(pool.saferead_cache_pending(), 0u);
}

TEST(SafeReadCache, CrossIncarnationInvalidation) {
    pool_config cfg;
    cfg.initial_capacity = 16;  // tiny: the erased cell recycles promptly
    cfg.saferead_cache = 1;
    pool_t pool(cfg);
    map_t map(pool);
    for (int k = 0; k < 4; ++k) map.insert(k, 100 + k);
    // Park cell 2 in the cache, then decay the parked reference to a
    // hint (flush releases the count but keeps the entry).
    ASSERT_TRUE(seek_find(map, 2).has_value());
    pool.flush_saferead_cache();
    EXPECT_EQ(pool.saferead_cache_pending(), 0u);
    // Recycle the hinted cell: erase, run the owed decrements, and
    // reinsert — the node returns through the free list with a bumped
    // incarnation (and may be handed right back to the new cell).
    ASSERT_TRUE(map.erase(2));
    pool.flush_deferred_releases();
    pool.drain_retired();
    ASSERT_TRUE(map.insert(2, 202));
    // The stale hint must not resurrect the old cell: a take attempt
    // revalidates the incarnation and backs out, and the lookup lands
    // on the new cell through the normal seek.
    auto v = seek_find(map, 2);
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 202);
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SafeReadCache, DisabledByConfigKnob) {
    pool_config cfg;
    cfg.initial_capacity = 64;
    cfg.saferead_cache = 0;  // explicit off beats the env/default
    pool_t pool(cfg);
    map_t map(pool);
    EXPECT_FALSE(pool.saferead_cache_enabled());
    for (int k = 0; k < 8; ++k) map.insert(k, k);
    for (int round = 0; round < 8; ++round) {
        ASSERT_TRUE(seek_find(map, 3).has_value());
    }
    const auto s = pool.saferead_cache_stats();
    EXPECT_EQ(s.hits, 0u);
    EXPECT_EQ(s.evictions, 0u);
    EXPECT_EQ(pool.saferead_cache_pending(), 0u);
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SafeReadCache, CompiledOutUnderEpochs) {
    using epoch_map_t = sorted_list_map<int, int, std::less<int>, epoch_policy>;
    epoch_map_t map(64);
    EXPECT_FALSE(map.list().pool().saferead_cache_enabled());
    EXPECT_EQ(map.list().pool().saferead_cache_capacity() *
                  std::size_t{map.list().pool().saferead_cache_enabled()},
              0u);
    for (int k = 0; k < 4; ++k) map.insert(k, k);
    ASSERT_TRUE(map.find(2).has_value());
    const auto s = map.list().pool().saferead_cache_stats();
    EXPECT_EQ(s.hits + s.misses + s.evictions, 0u);
}

/// Deterministic hit-rate floor: Zipf(0.99) keys over a 64-key map,
/// fixed seed, single thread. The hot keys' landing cells stay parked
/// between visits, so a healthy cache converts a solid fraction of the
/// protect/copy traffic into zero-RMW takes. The floor is deliberately
/// loose — it guards "the cache works at all", not a specific ratio.
TEST(SafeReadCache, ZipfHitRateFloor) {
    pool_config cfg;
    cfg.initial_capacity = 256;
    cfg.saferead_cache = 1;
    cfg.saferead_cache_size = 16;
    pool_t pool(cfg);
    map_t map(pool);
    constexpr std::uint64_t kKeys = 64;
    for (int k = 0; k < static_cast<int>(kKeys); ++k) map.insert(k, k);
    const auto before = pool.saferead_cache_stats();
    zipf_generator zipf(kKeys, 0.99);
    xorshift64 rng(0xC0FFEEULL);
    for (int i = 0; i < 20000; ++i) {
        const int k = static_cast<int>(zipf(rng));
        ASSERT_TRUE(seek_find(map, k).has_value());
    }
    const auto after = pool.saferead_cache_stats();
    const std::uint64_t hits = after.hits - before.hits;
    const std::uint64_t misses = after.misses - before.misses;
    ASSERT_GT(hits + misses, 0u);
    const double rate =
        static_cast<double>(hits) / static_cast<double>(hits + misses);
    EXPECT_GT(rate, 0.25) << "hits=" << hits << " misses=" << misses;
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
