// Scheduler coverage for the snapshot / range-query layer
// (step_kind::version_publish, step_kind::rq_validate), across all three
// reclamation policies. The windows under test:
//
//   * link-CAS -> born-stamp publication: an insert has won its swing but
//     not yet stamped born_ts; a preemption there leaves the cell in the
//     "in flight" state that snapshot walks must exclude without tearing
//     linearizability.
//   * dead-stamp -> victim hand-off -> physical unlink: an erase has
//     closed the victim's interval but not yet pushed it to in-flight
//     queries or unlinked it; a preemption there is exactly the hole the
//     registry exists to close (a miss surfaces as a torn snapshot:
//     a stable key absent, a duplicate, or an unsorted result).
//   * slot claim / timestamp draw / retire inside the registry itself
//     (rq_validate): pushes racing slot reuse must be filtered by the
//     next user's later timestamp, never leaked or double-consumed.
//   * split-ordered cross-bucket resize DURING a range query, including
//     the decay-driven shrink path (D1 residual): the resize CAS must
//     not split a snapshot.
//
// Pinned seeds replay fixed schedules through the deterministic
// scheduler — replay any one with LFLL_SCHED_REPLAY=<seed>.
#define LFLL_SCHED_CHAOS 1

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/bst.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/dict/split_ordered_map.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"
#include "lfll/sched/session.hpp"

namespace {

using namespace lfll;

sched::options pinned(std::uint64_t seed) {
    sched::options o;
    o.seed = seed;
    o.sched_mode = (seed % 2 == 0) ? sched::mode::random_walk : sched::mode::pct;
    o.change_points = 3;
    o.max_steps = 2'000'000;
    o.record_trace = true;
    return o;
}

/// Snapshot invariants that need no linearizability search: sorted,
/// duplicate-free, and every key the churners never touch present.
template <typename Pairs>
void check_snapshot(const Pairs& snap, int stable_lo, int stable_hi) {
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end(),
                               [](const auto& a, const auto& b) {
                                   return a.first < b.first;
                               }));
    for (std::size_t i = 1; i < snap.size(); ++i) {
        EXPECT_NE(snap[i - 1].first, snap[i].first) << "duplicate in snapshot";
    }
    for (int k = stable_lo; k < stable_hi; ++k) {
        EXPECT_TRUE(std::any_of(snap.begin(), snap.end(),
                                [&](const auto& kv) { return kv.first == k; }))
            << "stable key " << k << " missing from snapshot";
    }
}

template <typename Map>
audit_report quiesce_and_audit(Map& map) {
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    return audit_list(map.list());
}

/// version_publish + rq_validate windows on the flat sorted map: two
/// churners recycle the mid-range keys while two snapshot bodies draw
/// overlapping tickets.
template <typename Policy>
void run_publish_window(std::uint64_t seed) {
    using map_t = sorted_list_map<int, int, std::less<int>, Policy>;
    map_t map(32);  // tiny pool: erased cells recycle under the queries
    for (int k = 0; k < 10; ++k) map.insert(k, 100 + k);
    std::vector<std::function<void()>> bodies;
    for (int q = 0; q < 2; ++q) {
        bodies.push_back([&map] {
            for (int round = 0; round < 3; ++round) {
                auto snap = map.range_query(0, 10);
                // Keys 0..2 and 8..9 are never churned.
                check_snapshot(snap, 0, 3);
                check_snapshot(snap, 8, 10);
            }
        });
    }
    for (int t = 0; t < 2; ++t) {
        bodies.push_back([&map, t] {
            for (int i = 0; i < 3; ++i) {
                const int k = 3 + (t * 3 + i) % 5;
                map.erase(k);
                map.insert(k, 110 + k);
            }
        });
    }
    sched::run(pinned(seed), std::move(bodies));
    EXPECT_GT(
        sched::scheduler::instance().kind_count(sched::step_kind::version_publish),
        0u)
        << "schedule never entered a stamp-publication window, seed " << seed;
    EXPECT_GT(sched::scheduler::instance().kind_count(sched::step_kind::rq_validate),
              0u)
        << "schedule never entered a registry window, seed " << seed;
    auto r = quiesce_and_audit(map);
    EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                      << " — replay with LFLL_SCHED_REPLAY=" << seed;
}

/// Cross-bucket window: a snapshot runs while inserts double the
/// directory and erases decay it back down (min_load set, check every
/// update). The resize CASes and the shrink must never split a snapshot.
template <typename Policy>
void run_resize_during_range_window(std::uint64_t seed) {
    using map_t = split_ordered_map<int, int, std::hash<int>, std::less<int>, Policy>;
    typename map_t::config cfg;
    cfg.initial_buckets = 2;
    cfg.capacity_hint = 96;
    cfg.max_load = 1.0;           // grows almost immediately
    cfg.min_load = 0.5;           // decay shrinks the directory back
    cfg.resize_check_period = 1;  // deterministic under the scheduler
    map_t map(cfg);
    for (int k = 0; k < 8; ++k) map.insert(k, k);  // stable keys 0..7
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&map] {
        for (int round = 0; round < 3; ++round) {
            auto snap = map.snapshot();
            check_snapshot(snap, 0, 8);
        }
    });
    bodies.push_back([&map] {  // grower: forces splits mid-query
        for (int k = 100; k < 110; ++k) map.insert(k, k);
    });
    bodies.push_back([&map] {  // decayer: erase back down, ticking shrink
        for (int k = 100; k < 110; ++k) map.erase(k);
        for (int k = 100; k < 110; ++k) map.erase(k);  // failed ops tick too
    });
    sched::run(pinned(seed), std::move(bodies));
    EXPECT_GT(
        sched::scheduler::instance().kind_count(sched::step_kind::version_publish),
        0u)
        << "schedule never entered a stamp-publication window, seed " << seed;
    // Post-run sanity at quiescence: all stable keys, none of the churned.
    // (The scheduler may run the decayer before the grower, so finish the
    // decay here.)
    for (int k = 100; k < 110; ++k) map.erase(k);
    auto snap = map.snapshot();
    EXPECT_EQ(snap.size(), 8u);
    check_snapshot(snap, 0, 8);
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    std::map<const typename map_t::node*, std::size_t> external;
    map.for_each_bucket_slot(
        [&](std::size_t, typename map_t::node* d) { external[d] += 1; });
    const audit_report r = audit_list(map.list(), external);
    EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                      << " — replay with LFLL_SCHED_REPLAY=" << seed;
}

/// Decay shrink under a real schedule (D1 residual): grow the directory
/// well past its floor, then erase-heavy decay must halve it at least
/// once — including via erases that FAIL (the old code only ticked the
/// resize check on successful ops, so a miss-heavy decay never shrank).
template <typename Policy>
void run_shrink_window(std::uint64_t seed) {
    using map_t = split_ordered_map<int, int, std::hash<int>, std::less<int>, Policy>;
    typename map_t::config cfg;
    cfg.initial_buckets = 2;
    cfg.capacity_hint = 160;
    cfg.max_load = 1.0;
    cfg.min_load = 0.5;
    cfg.resize_check_period = 1;
    map_t map(cfg);
    for (int k = 0; k < 48; ++k) map.insert(k, k);
    const std::size_t grown = map.bucket_count();
    ASSERT_GT(grown, map.initial_bucket_count());
    std::vector<std::function<void()>> bodies;
    for (int t = 0; t < 2; ++t) {
        bodies.push_back([&map, t] {
            for (int k = t; k < 48; k += 2) map.erase(k);
            for (int k = t; k < 8; k += 2) map.erase(k);  // misses tick too
        });
    }
    sched::run(pinned(seed), std::move(bodies));
    EXPECT_GE(map.shrink_count(), 1u)
        << "decay never shrank the directory (grown to " << grown
        << ", now " << map.bucket_count() << "), seed " << seed;
    EXPECT_LT(map.bucket_count(), grown);
    EXPECT_GE(map.bucket_count(), map.initial_bucket_count());
    EXPECT_EQ(map.size_slow(), 0u);
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    std::map<const typename map_t::node*, std::size_t> external;
    map.for_each_bucket_slot(
        [&](std::size_t, typename map_t::node* d) { external[d] += 1; });
    const audit_report r = audit_list(map.list(), external);
    EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                      << " — replay with LFLL_SCHED_REPLAY=" << seed;
}

/// BST replace-cell revive racing snapshots: the revive swing is a
/// physical unlink of the tombstone, so its pre-swing hand-off is what
/// keeps an overlapping snapshot from losing the interval.
template <typename Policy>
void run_bst_revive_window(std::uint64_t seed) {
    bst_set<int, std::less<int>, Policy> t{64};
    for (int k : {8, 4, 12, 2, 6, 10, 14}) t.insert(k);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&t] {
        for (int round = 0; round < 3; ++round) {
            auto snap = t.snapshot();
            EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));
            EXPECT_TRUE(std::adjacent_find(snap.begin(), snap.end()) == snap.end());
            // 2, 8, 14 are never churned.
            for (int k : {2, 8, 14}) {
                EXPECT_TRUE(std::find(snap.begin(), snap.end(), k) != snap.end())
                    << "stable key " << k << " missing, seed";
            }
        }
    });
    for (int m = 0; m < 2; ++m) {
        bodies.push_back([&t, m] {
            const int k = (m == 0) ? 4 : 10;
            for (int i = 0; i < 3; ++i) {
                t.erase(k);
                t.insert(k);  // tombstone revive: replace-cell swing
            }
        });
    }
    sched::run(pinned(seed), std::move(bodies));
    EXPECT_GT(
        sched::scheduler::instance().kind_count(sched::step_kind::version_publish),
        0u)
        << "schedule never entered a stamp-publication window, seed " << seed;
    EXPECT_TRUE(t.validate_slow().empty());
    EXPECT_EQ(t.snapshot(), (std::vector<int>{2, 4, 6, 8, 10, 12, 14}));
}

TEST(RqSched, PinnedSeed_PublishWindow_Refcount) {
    for (std::uint64_t seed : {3ull, 8ull, 17ull, 29ull, 41ull, 56ull}) {
        run_publish_window<valois_refcount>(seed);
    }
}
TEST(RqSched, PinnedSeed_PublishWindow_Hazard) {
    for (std::uint64_t seed : {5ull, 12ull, 23ull, 38ull}) {
        run_publish_window<hazard_policy>(seed);
    }
}
TEST(RqSched, PinnedSeed_PublishWindow_Epoch) {
    for (std::uint64_t seed : {4ull, 9ull, 26ull}) {
        run_publish_window<epoch_policy>(seed);
    }
}

TEST(RqSched, PinnedSeed_ResizeDuringRange_Refcount) {
    for (std::uint64_t seed : {2ull, 7ull, 13ull, 31ull}) {
        run_resize_during_range_window<valois_refcount>(seed);
    }
}
TEST(RqSched, PinnedSeed_ResizeDuringRange_Hazard) {
    for (std::uint64_t seed : {6ull, 19ull}) {
        run_resize_during_range_window<hazard_policy>(seed);
    }
}
TEST(RqSched, PinnedSeed_ResizeDuringRange_Epoch) {
    for (std::uint64_t seed : {10ull, 15ull}) {
        run_resize_during_range_window<epoch_policy>(seed);
    }
}

TEST(RqSched, PinnedSeed_ShrinkWindow_Refcount) {
    for (std::uint64_t seed : {11ull, 22ull, 44ull}) {
        run_shrink_window<valois_refcount>(seed);
    }
}
TEST(RqSched, PinnedSeed_ShrinkWindow_Epoch) {
    for (std::uint64_t seed : {14ull, 27ull}) {
        run_shrink_window<epoch_policy>(seed);
    }
}

TEST(RqSched, PinnedSeed_BstReviveWindow_Refcount) {
    for (std::uint64_t seed : {3ull, 21ull, 35ull}) {
        run_bst_revive_window<valois_refcount>(seed);
    }
}
TEST(RqSched, PinnedSeed_BstReviveWindow_Hazard) {
    for (std::uint64_t seed : {16ull, 28ull}) {
        run_bst_revive_window<hazard_policy>(seed);
    }
}

}  // namespace
