// Scheduler coverage for the batched multi-op path
// (step_kind::batch_drain), across all three reclamation policies. The
// windows under test:
//
//   * the cursor-resume handoff between sub-ops of one sorted batch: a
//     preemption there lets concurrent erases/inserts restructure the
//     neighbourhood the resumed seek starts from (dead landing cell,
//     recycled aux, superhop retarget) — the batch must still serve
//     every sub-op with per-op linearizable results;
//   * a sorted batch racing a LIVE split-ordered resize: the batch bins
//     keys against a mask sampled once, so a directory double/shrink
//     mid-batch must only cost re-anchors, never a wrong result;
//   * two batches racing each other (drain-vs-drain) over one key range,
//     where each batch's insert hands its cursor the freshly linked
//     cell (land_on_inserted) while the other batch tombstones it.
//
// Pinned seeds replay fixed schedules through the deterministic
// scheduler — replay any one with LFLL_SCHED_REPLAY=<seed>.
#define LFLL_SCHED_CHAOS 1

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/dict/split_ordered_map.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"
#include "lfll/sched/session.hpp"

namespace {

using namespace lfll;

sched::options pinned(std::uint64_t seed) {
    sched::options o;
    o.seed = seed;
    o.sched_mode = (seed % 2 == 0) ? sched::mode::random_walk : sched::mode::pct;
    o.change_points = 3;
    o.max_steps = 2'000'000;
    o.record_trace = true;
    return o;
}

/// Batched gets over stable + churned keys: stable keys must always be
/// present with their canonical value; churned keys absent or canonical.
template <typename Map>
void run_checked_batch(Map& m, int lo, int hi, int stable_step,
                       std::uint64_t seed) {
    std::vector<batch_op<int, int>> ops;
    for (int k = lo; k < hi; ++k) ops.push_back({batch_op_kind::get, k, 0});
    std::vector<batch_result<int>> out(ops.size());
    m.apply_batch(ops.data(), ops.size(), out.data());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const int k = ops[i].key;
        if (k % stable_step == 0) {
            EXPECT_TRUE(out[i].ok) << "stable key " << k << " lost, seed " << seed;
            if (out[i].ok) EXPECT_EQ(out[i].value, std::optional<int>(100 + k));
        } else if (out[i].ok) {
            EXPECT_EQ(out[i].value, std::optional<int>(200 + k))
                << "churned key " << k << " carries a value nobody wrote, seed "
                << seed;
        }
    }
}

/// Drain-vs-erase on the flat sorted map: the batch body's cursor rides
/// through cells two churners tombstone and recycle under it.
template <typename Policy>
void run_drain_vs_erase(std::uint64_t seed) {
    using map_t = sorted_list_map<int, int, std::less<int>, Policy>;
    map_t map(48);  // tiny pool: erased cells recycle under the batch
    for (int k = 0; k < 12; k += 2) map.insert(k, 100 + k);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&map, seed] {
        for (int round = 0; round < 3; ++round) {
            run_checked_batch(map, 0, 12, 2, seed);
        }
    });
    for (int t = 0; t < 2; ++t) {
        bodies.push_back([&map, t] {
            for (int i = 0; i < 3; ++i) {
                const int k = 1 + 2 * ((t * 3 + i) % 5);
                map.insert(k, 200 + k);
                map.erase(k);
            }
        });
    }
    sched::run(pinned(seed), std::move(bodies));
    EXPECT_GT(sched::scheduler::instance().kind_count(sched::step_kind::batch_drain),
              0u)
        << "schedule never entered a cursor-resume window, seed " << seed;
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    const audit_report r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                      << " — replay with LFLL_SCHED_REPLAY=" << seed;
}

/// Drain-vs-drain: two mixed batches over one range, each landing its
/// cursor on cells the other tombstones. Post-conditions are checked at
/// quiescence against per-key op balance.
template <typename Policy>
void run_drain_vs_drain(std::uint64_t seed) {
    using map_t = sorted_list_map<int, int, std::less<int>, Policy>;
    map_t map(64);
    for (int k = 0; k < 8; k += 2) map.insert(k, 100 + k);
    std::vector<int> won_inserts(2), won_erases(2);
    std::vector<std::function<void()>> bodies;
    for (int b = 0; b < 2; ++b) {
        bodies.push_back([&map, &won_inserts, &won_erases, b] {
            std::vector<batch_op<int, int>> ops;
            for (int k = 1; k < 8; k += 2) {
                ops.push_back({batch_op_kind::insert, k, 300 + k});
                ops.push_back({batch_op_kind::get, k, 0});
                ops.push_back({batch_op_kind::erase, k, 0});
            }
            std::vector<batch_result<int>> out(ops.size());
            for (int round = 0; round < 2; ++round) {
                map.apply_batch(ops.data(), ops.size(), out.data());
                for (std::size_t i = 0; i < ops.size(); ++i) {
                    if (!out[i].ok) continue;
                    if (ops[i].kind == batch_op_kind::insert) won_inserts[b]++;
                    if (ops[i].kind == batch_op_kind::erase) won_erases[b]++;
                }
            }
        });
    }
    sched::run(pinned(seed), std::move(bodies));
    EXPECT_GT(sched::scheduler::instance().kind_count(sched::step_kind::batch_drain),
              0u)
        << "schedule never interleaved the two drains, seed " << seed;
    // Same-key insert/erase pairs inside each batch: globally, wins must
    // balance to the surviving odd-key population.
    const int balance = won_inserts[0] + won_inserts[1] - won_erases[0] -
                        won_erases[1];
    int odd_live = 0;
    map.for_each([&](const int& k, const int& v) {
        if (k % 2 == 1) {
            ++odd_live;
            EXPECT_EQ(v, 300 + k);
        } else {
            EXPECT_EQ(v, 100 + k);
        }
    });
    EXPECT_EQ(balance, odd_live) << "seed " << seed;
    EXPECT_EQ(map.size_slow(), static_cast<std::size_t>(4 + odd_live));
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    const audit_report r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                      << " — replay with LFLL_SCHED_REPLAY=" << seed;
}

/// Drain-vs-resize: a batch runs against the split-ordered map while a
/// grower doubles the directory and a decayer shrinks it back — the
/// batch's once-sampled bucket mask must only ever cost re-anchors.
template <typename Policy>
void run_drain_vs_resize(std::uint64_t seed) {
    using map_t =
        split_ordered_map<int, int, std::hash<int>, std::less<int>, Policy>;
    typename map_t::config cfg;
    cfg.initial_buckets = 2;
    cfg.capacity_hint = 96;
    cfg.max_load = 1.0;
    cfg.min_load = 0.5;
    cfg.resize_check_period = 1;
    map_t map(cfg);
    for (int k = 0; k < 8; k += 2) map.insert(k, 100 + k);
    std::vector<std::function<void()>> bodies;
    bodies.push_back([&map, seed] {
        for (int round = 0; round < 3; ++round) {
            run_checked_batch(map, 0, 8, 2, seed);
        }
    });
    bodies.push_back([&map] {  // grower: forces splits mid-batch
        for (int k = 100; k < 110; ++k) map.insert(k, k);
    });
    bodies.push_back([&map] {  // decayer: erases tick the shrink path
        for (int k = 100; k < 110; ++k) map.erase(k);
        for (int k = 100; k < 110; ++k) map.erase(k);  // misses tick too
    });
    sched::run(pinned(seed), std::move(bodies));
    EXPECT_GT(sched::scheduler::instance().kind_count(sched::step_kind::batch_drain),
              0u)
        << "schedule never entered a batch window, seed " << seed;
    for (int k = 100; k < 110; ++k) map.erase(k);
    EXPECT_EQ(map.size_slow(), 4u);
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    std::map<const typename map_t::node*, std::size_t> external;
    map.for_each_bucket_slot(
        [&](std::size_t, typename map_t::node* d) { external[d] += 1; });
    const audit_report r = audit_list(map.list(), external);
    EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                      << " — replay with LFLL_SCHED_REPLAY=" << seed;
}

TEST(BatchSched, PinnedSeed_DrainVsErase_Refcount) {
    for (std::uint64_t seed : {3ull, 8ull, 17ull, 29ull, 41ull}) {
        run_drain_vs_erase<valois_refcount>(seed);
    }
}
TEST(BatchSched, PinnedSeed_DrainVsErase_Hazard) {
    for (std::uint64_t seed : {5ull, 12ull, 23ull}) {
        run_drain_vs_erase<hazard_policy>(seed);
    }
}
TEST(BatchSched, PinnedSeed_DrainVsErase_Epoch) {
    for (std::uint64_t seed : {4ull, 9ull, 26ull}) {
        run_drain_vs_erase<epoch_policy>(seed);
    }
}

TEST(BatchSched, PinnedSeed_DrainVsDrain_Refcount) {
    for (std::uint64_t seed : {2ull, 11ull, 35ull}) {
        run_drain_vs_drain<valois_refcount>(seed);
    }
}
TEST(BatchSched, PinnedSeed_DrainVsDrain_Hazard) {
    for (std::uint64_t seed : {7ull, 20ull}) {
        run_drain_vs_drain<hazard_policy>(seed);
    }
}
TEST(BatchSched, PinnedSeed_DrainVsDrain_Epoch) {
    for (std::uint64_t seed : {14ull, 33ull}) {
        run_drain_vs_drain<epoch_policy>(seed);
    }
}

TEST(BatchSched, PinnedSeed_DrainVsResize_Refcount) {
    for (std::uint64_t seed : {2ull, 7ull, 13ull, 31ull}) {
        run_drain_vs_resize<valois_refcount>(seed);
    }
}
TEST(BatchSched, PinnedSeed_DrainVsResize_Hazard) {
    for (std::uint64_t seed : {6ull, 19ull}) {
        run_drain_vs_resize<hazard_policy>(seed);
    }
}
TEST(BatchSched, PinnedSeed_DrainVsResize_Epoch) {
    for (std::uint64_t seed : {10ull, 15ull}) {
        run_drain_vs_resize<epoch_policy>(seed);
    }
}

}  // namespace
