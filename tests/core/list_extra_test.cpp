// Additional core-list coverage: seek(), shared pools, payload lifetime
// accounting, cursor self-assignment, and non-trivial payload types.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/core/list.hpp"

namespace {

using namespace lfll;

template <typename T>
void append(valois_list<T>& list, T v) {
    typename valois_list<T>::cursor c(list);
    while (!c.at_end()) list.next(c);
    list.insert(c, std::move(v));
}

TEST(ListSeek, ResumesAfterGivenCell) {
    valois_list<int> list(32);
    for (int v : {1, 2, 3, 4}) append(list, v);
    valois_list<int>::cursor c(list);
    list.next(c);  // on 2
    auto* cell2 = c.target();
    valois_list<int>::cursor seeked;
    list.seek(seeked, cell2);
    EXPECT_EQ(*seeked, 3);  // position immediately after cell 2
}

TEST(ListSeek, FromDeletedCellLandsOnLiveSuffix) {
    valois_list<int> list(32);
    for (int v : {1, 2, 3}) append(list, v);
    valois_list<int>::cursor parked(list);
    list.next(parked);  // on 2, pins it
    {
        valois_list<int>::cursor deleter(list);
        list.next(deleter);
        ASSERT_TRUE(list.try_delete(deleter));  // delete 2
    }
    valois_list<int>::cursor c;
    list.seek(c, parked.target());  // seek from the deleted cell
    EXPECT_EQ(*c, 3);
}

TEST(ListSeek, FromLastCellIsEnd) {
    valois_list<int> list(32);
    append(list, 1);
    valois_list<int>::cursor c(list);
    valois_list<int>::cursor s;
    list.seek(s, c.target());
    EXPECT_TRUE(s.at_end());
}

TEST(SharedPool, TwoListsShareNodes) {
    node_pool<list_node<int>> pool(64);
    valois_list<int> a(pool);
    valois_list<int> b(pool);
    for (int v : {1, 2, 3}) append(a, v);
    for (int v : {7, 8}) append(b, v);
    EXPECT_EQ(a.size_slow(), 3u);
    EXPECT_EQ(b.size_slow(), 2u);
    auto r = audit_shared(pool, std::vector<valois_list<int>*>{&a, &b});
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.cells, 5u);
}

TEST(SharedPool, DestroyedListReturnsItsNodes) {
    node_pool<list_node<int>> pool(64);
    valois_list<int> keeper(pool);
    append(keeper, 42);
    const std::size_t free_before = pool.free_count();
    {
        valois_list<int> temp(pool);
        for (int v : {1, 2, 3, 4, 5}) append(temp, v);
        EXPECT_LT(pool.free_count(), free_before);
    }
    // temp's dummies, cells, and aux nodes all came home: exact restore
    // (after flushing this thread's batched traversal decrements).
    pool.flush_deferred_releases();
    EXPECT_EQ(pool.free_count(), free_before);
    auto r = audit_shared(pool, std::vector<valois_list<int>*>{&keeper});
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(ListPayload, DestructorsBalancedThroughChurn) {
    static std::atomic<int> live{0};
    struct probe {
        int v;
        explicit probe(int x) : v(x) { live.fetch_add(1); }
        probe(const probe& o) : v(o.v) { live.fetch_add(1); }
        probe(probe&& o) noexcept : v(o.v) { live.fetch_add(1); }
        ~probe() { live.fetch_sub(1); }
    };
    live = 0;
    {
        valois_list<probe> list(16);
        typename valois_list<probe>::cursor c(list);
        for (int i = 0; i < 20; ++i) {
            list.first(c);
            list.insert(c, probe(i));
        }
        EXPECT_EQ(live.load(), 20);  // exactly one constructed copy per cell
        list.first(c);
        for (int i = 0; i < 10; ++i) {
            ASSERT_TRUE(list.try_delete(c));
            list.update(c);
        }
        c.reset();
        // Deleted cells were reclaimed (no cursors pin them; parked
        // SafeRead-cache references and batched decrements are flushed —
        // both only ever DELAY reclamation): payloads gone.
        list.pool().flush_deferred_releases();
        EXPECT_EQ(live.load(), 10);
    }
    // The list destructor releases the whole chain through the normal
    // reclamation cascade, so every remaining payload is destroyed.
    EXPECT_EQ(live.load(), 0);
}

TEST(ListPayload, StringsSurviveChurn) {
    valois_list<std::string> list(16);
    valois_list<std::string>::cursor c(list);
    for (int i = 0; i < 30; ++i) {
        list.first(c);
        list.insert(c, std::string(100, static_cast<char>('a' + i % 26)));
    }
    list.first(c);
    int seen = 0;
    do {
        if (!c.at_end()) {
            EXPECT_EQ((*c).size(), 100u);
            ++seen;
        }
    } while (list.next(c));
    EXPECT_EQ(seen, 30);
}

TEST(Cursor, SelfAssignmentIsNoop) {
    valois_list<int> list(16);
    append(list, 1);
    valois_list<int>::cursor c(list);
    c = c;  // must not double-release
    EXPECT_EQ(*c, 1);
    c.reset();
    auto r = audit_list(list);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Cursor, DetachedCursorIsInert) {
    valois_list<int>::cursor c;
    EXPECT_FALSE(c.valid());
    c.reset();  // no list: must be safe
    valois_list<int>::cursor d(std::move(c));
    d.reset();
}

TEST(ListInsert, ConvenienceInsertLeavesValidCursor) {
    valois_list<int> list(16);
    valois_list<int>::cursor c(list);
    list.insert(c, 5);
    EXPECT_TRUE(c.valid());
    EXPECT_EQ(*c, 5);  // cursor revalidated onto the new cell
}

}  // namespace
