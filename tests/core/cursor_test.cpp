// Cursor semantics: validity, invalidation by structural change, copy/move
// reference accounting, and the paper's "cell persistence" guarantee —
// a cursor parked on a deleted cell keeps working (§2.2).
#include <gtest/gtest.h>

#include <map>

#include "lfll/core/audit.hpp"
#include "lfll/core/list.hpp"

namespace {

using list_t = lfll::valois_list<int>;
using cursor_t = list_t::cursor;
using node_t = lfll::list_node<int>;

void fill(list_t& list, int lo, int hi) {  // inserts lo..hi in order
    cursor_t c(list);
    for (int i = hi; i >= lo; --i) {
        list.first(c);
        list.insert(c, i);
    }
}

/// Folds a cursor's references into an audit external-reference map.
/// pre_aux is an unreferenced hint (traversal fast path) — not counted.
void count_refs(std::map<const node_t*, std::size_t>& m, const cursor_t& c) {
    if (c.pre_cell() != nullptr) m[c.pre_cell()]++;
    if (c.target() != nullptr) m[c.target()]++;
}

TEST(Cursor, FreshCursorIsValidAndAtFirstItem) {
    list_t list(8);
    fill(list, 1, 3);
    cursor_t c(list);
    EXPECT_TRUE(c.valid());
    EXPECT_EQ(*c, 1);
}

TEST(Cursor, EmptyListCursorVisitsEndPosition) {
    list_t list(8);
    cursor_t c(list);
    EXPECT_TRUE(c.valid());
    EXPECT_TRUE(c.at_end());
}

TEST(Cursor, InsertionAtCursorInvalidatesIt) {
    list_t list(8);
    fill(list, 1, 2);
    cursor_t c(list);
    node_t* q = list.make_cell(99);
    node_t* a = list.make_aux();
    ASSERT_TRUE(list.try_insert(c, q, a));
    EXPECT_FALSE(c.valid());  // pre_aux now points at q, not target
    list.update(c);
    EXPECT_TRUE(c.valid());
    EXPECT_EQ(*c, 99);  // update lands on the newly inserted cell
    list.release_node(q);
    list.release_node(a);
}

TEST(Cursor, ConcurrentShapeChangeElsewhereKeepsCursorUsable) {
    list_t list(8);
    fill(list, 1, 4);
    cursor_t mover(list);
    list.next(mover);  // on 2
    cursor_t deleter(list);
    ASSERT_TRUE(list.try_delete(deleter));  // delete 1 (before mover)
    // mover's neighbourhood did not change; it is still valid.
    EXPECT_TRUE(mover.valid());
    EXPECT_EQ(*mover, 2);
    ASSERT_TRUE(list.next(mover));
    EXPECT_EQ(*mover, 3);
}

TEST(Cursor, ParkedOnDeletedCellStillReadsValue) {
    list_t list(8);
    fill(list, 1, 3);
    cursor_t parked(list);
    list.next(parked);  // on 2
    cursor_t deleter(list);
    list.next(deleter);
    ASSERT_EQ(*deleter, 2);
    ASSERT_TRUE(list.try_delete(deleter));
    deleter.reset();
    // Cell persistence: the deleted cell's contents remain accessible.
    EXPECT_EQ(*parked, 2);
    EXPECT_TRUE(parked.target()->is_deleted());
}

TEST(Cursor, ParkedOnDeletedCellCanTraverseOn) {
    list_t list(8);
    fill(list, 1, 3);
    cursor_t parked(list);
    list.next(parked);  // on 2
    {
        cursor_t deleter(list);
        list.next(deleter);
        ASSERT_TRUE(list.try_delete(deleter));
    }
    // Traversal from the deleted cell reaches the live suffix.
    ASSERT_TRUE(list.next(parked));
    EXPECT_EQ(*parked, 3);
    ASSERT_TRUE(list.next(parked));
    EXPECT_TRUE(parked.at_end());
}

TEST(Cursor, UpdateFromDeletedTargetAdvancesToLiveCell) {
    list_t list(8);
    fill(list, 1, 3);
    cursor_t a(list);
    cursor_t b(list);
    ASSERT_TRUE(list.try_delete(a));  // both cursors targeted 1
    a.reset();
    EXPECT_FALSE(b.valid());
    list.update(b);
    EXPECT_TRUE(b.valid());
    EXPECT_EQ(*b, 2);
}

TEST(Cursor, CopyHoldsIndependentReferences) {
    list_t list(8);
    fill(list, 1, 2);
    cursor_t a(list);
    cursor_t b = a;  // copy
    list.next(a);
    EXPECT_EQ(*a, 2);
    EXPECT_EQ(*b, 1);  // unaffected
    std::map<const node_t*, std::size_t> ext;
    count_refs(ext, a);
    count_refs(ext, b);
    auto r = lfll::audit_list(list, ext);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Cursor, CopyAssignReleasesOldReferences) {
    list_t list(8);
    fill(list, 1, 3);
    cursor_t a(list);
    cursor_t b(list);
    list.next(b);
    b = a;  // b's old refs must be released
    EXPECT_EQ(*b, 1);
    a.reset();
    b.reset();
    auto r = lfll::audit_list(list);
    EXPECT_TRUE(r.ok) << r.error;  // refcount audit catches leaks
}

TEST(Cursor, MoveTransfersOwnership) {
    list_t list(8);
    fill(list, 1, 2);
    cursor_t a(list);
    cursor_t b = std::move(a);
    EXPECT_EQ(*b, 1);
    b.reset();
    auto r = lfll::audit_list(list);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Cursor, DestructionReleasesPinnedDeletedCell) {
    list_t list(8);
    fill(list, 1, 1);
    const std::size_t free_at_start = list.pool().free_count();
    {
        cursor_t parked(list);
        cursor_t deleter(list);
        ASSERT_TRUE(list.try_delete(deleter));
        deleter.reset();
        // parked still pins the deleted cell: it must not be on the free
        // list yet.
        EXPECT_LT(list.pool().free_count(), free_at_start + 2);
    }
    // All cursors gone: after flushing this thread's deferred-release
    // buffer (traversal drops may still be batched there), the deleted
    // cell and its aux node are reclaimed.
    list.pool().flush_deferred_releases();
    EXPECT_EQ(list.pool().free_count(), free_at_start + 2);
    auto r = lfll::audit_list(list);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(Cursor, AuditSeesCursorReferences) {
    list_t list(8);
    fill(list, 1, 2);
    cursor_t c(list);
    std::map<const node_t*, std::size_t> ext;
    count_refs(ext, c);
    auto r = lfll::audit_list(list, ext);
    EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
