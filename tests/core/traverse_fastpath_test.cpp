// Scheduler coverage for the traversal fast-path engine: the elided-aux
// hop window (hop_over_aux / batch_commit, step_kind::ref_transfer), the
// deferred-release buffer (step_kind::deferred_release) and its flush
// boundary (step_kind::flush). Pinned seeds replay fixed schedules
// through the deterministic scheduler — exact regression pins, replay
// any one with LFLL_SCHED_REPLAY=<seed> — plus direct (unscheduled)
// checks of the deferred-release invariants the §5 audits rely on.
#define LFLL_SCHED_CHAOS 1

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/core/list.hpp"
#include "lfll/sched/session.hpp"

namespace {

using list_t = lfll::valois_list<char>;
using cursor_t = list_t::cursor;
using pool_t = list_t::pool_type;

void append(list_t& list, char v) {
    cursor_t c(list);
    while (!c.at_end()) list.next(c);
    list.insert(c, v);
}

std::vector<char> contents(list_t& list) {
    std::vector<char> out;
    for (cursor_t c(list); !c.at_end(); list.next(c)) out.push_back(*c);
    return out;
}

lfll::sched::options pinned(std::uint64_t seed) {
    lfll::sched::options o;
    o.seed = seed;
    o.sched_mode = (seed % 2 == 0) ? lfll::sched::mode::random_walk
                                   : lfll::sched::mode::pct;
    o.change_points = 3;
    o.max_steps = 2'000'000;
    o.record_trace = true;
    return o;
}

/// The hop window: two traversers (one cursor-stepping, one scan()-ing —
/// char is batch_scannable, so the scan exercises batch_hop/batch_commit)
/// racing a deleter/re-inserter on a tiny recycling pool. The schedules
/// preempt inside the snapshot -> protect -> validate sandwich, so the
/// validation-failure fallbacks run for real; a hop that survived a
/// recycle it should have detected would surface as a count-audit error
/// or a value that was never in the list.
TEST(TraverseFastPath, PinnedSeed_ElidedHopValidationWindow) {
    for (std::uint64_t seed : {3ull, 8ull, 17ull, 29ull, 41ull, 56ull}) {
        list_t list(8);  // tiny: deletions recycle under the traversers
        for (char v : {'A', 'B', 'C', 'D'}) append(list, v);
        std::vector<std::function<void()>> bodies;
        bodies.push_back([&list] {  // cursor traverser
            for (int round = 0; round < 3; ++round) {
                for (cursor_t c(list); !c.at_end(); list.next(c)) {
                    const char v = *c;
                    ASSERT_GE(v, 'A');
                    ASSERT_LE(v, 'Z');
                }
            }
        });
        bodies.push_back([&list] {  // batched scanner
            for (int round = 0; round < 3; ++round) {
                list.scan([](const char& v) {
                    EXPECT_GE(v, 'A');
                    EXPECT_LE(v, 'Z');
                    return true;
                });
            }
        });
        bodies.push_back([&list] {  // churner: delete front, reinsert
            for (int i = 0; i < 4; ++i) {
                cursor_t c(list);
                if (!c.at_end() && list.try_delete(c)) {
                    list.update(c);
                    list.insert(c, static_cast<char>('E' + i));
                }
                c.reset();
            }
        });
        lfll::sched::run(pinned(seed), std::move(bodies));
        EXPECT_GT(lfll::sched::scheduler::instance().kind_count(
                      lfll::sched::step_kind::ref_transfer),
                  0u)
            << "schedule never entered the elided-hop window, seed " << seed;
        list.pool().drain_retired();
        auto r = lfll::audit_list(list);
        EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                          << " — replay with LFLL_SCHED_REPLAY=" << seed;
    }
}

/// The flush boundary: a backlog cap of 2 forces flush_deferred inside
/// the traversal loops, and the schedules preempt between buffering a
/// decrement and flushing it (deferred_release -> flush). The §5 audit
/// afterwards proves no decrement was lost or doubled across the
/// preempted flush windows.
TEST(TraverseFastPath, PinnedSeed_DeferredReleaseFlushWindow) {
    for (std::uint64_t seed : {2ull, 7ull, 13ull, 23ull, 37ull, 61ull}) {
        lfll::pool_config cfg;
        cfg.initial_capacity = 16;
        cfg.deferred_release = 1;  // force on, whatever the env says
        cfg.release_backlog = 2;   // flush constantly
        pool_t pool(cfg);
        list_t list(pool);
        for (char v : {'A', 'B', 'C', 'D', 'E'}) append(list, v);
        std::vector<std::function<void()>> bodies;
        for (int t = 0; t < 2; ++t) {
            bodies.push_back([&list] {  // traversers: feed the buffer
                for (int round = 0; round < 3; ++round) {
                    for (cursor_t c(list); !c.at_end(); list.next(c)) {
                    }
                }
            });
        }
        bodies.push_back([&list] {  // deleter: buffered nodes go unreachable
            for (int i = 0; i < 3; ++i) {
                cursor_t c(list);
                if (!c.at_end()) (void)list.try_delete(c);
                c.reset();
            }
        });
        lfll::sched::run(pinned(seed), std::move(bodies));
        auto& s = lfll::sched::scheduler::instance();
        EXPECT_GT(s.kind_count(lfll::sched::step_kind::deferred_release), 0u)
            << "seed " << seed;
        EXPECT_GT(s.kind_count(lfll::sched::step_kind::flush), 0u)
            << "seed " << seed;
        pool.drain_retired();
        auto r = lfll::audit_list(list);
        EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                          << " — replay with LFLL_SCHED_REPLAY=" << seed;
    }
}

/// The quiescence contract the audits depend on: a traversal leaves its
/// decrements parked in the thread's buffer, and the audit must (a) see
/// them — flushing internally — and (b) still balance every count.
TEST(TraverseFastPath, AuditPassesWithNonEmptyDecrementBuffer) {
    lfll::pool_config cfg;
    cfg.initial_capacity = 64;
    cfg.deferred_release = 1;   // force on, whatever the env says
    cfg.release_backlog = 64;   // and pin the cap (env can shrink it to 1)
    pool_t pool(cfg);
    list_t list(pool);
    for (char v : {'a', 'b', 'c', 'd', 'e', 'f'}) append(list, v);

    {
        cursor_t c(list);
        while (!c.at_end()) list.next(c);
    }
    // The walk buffered its hand-over-hand releases (backlog default 64,
    // far above the hops here — nothing flushed yet).
    ASSERT_GT(pool.deferred_release_pending(), 0u);

    auto r = lfll::audit_list(list);
    EXPECT_TRUE(r.ok) << r.error;
    // The audit's internal flush ran the real decrements.
    EXPECT_EQ(pool.deferred_release_pending(), 0u);
}

/// Deferred-release A/B: the same operation sequence against a buffering
/// pool and an immediate-release pool must produce the same list, the
/// same audit verdict, and — after the buffering side flushes — the same
/// free-node accounting.
TEST(TraverseFastPath, DeferredOnAndOffConverge) {
    auto run = [](int deferred) {
        lfll::pool_config cfg;
        cfg.initial_capacity = 64;
        cfg.deferred_release = deferred;
        pool_t pool(cfg);
        list_t list(pool);
        for (char v : {'m', 'n', 'o', 'p', 'q'}) append(list, v);
        for (int i = 0; i < 2; ++i) {  // delete the front twice
            cursor_t c(list);
            EXPECT_TRUE(list.try_delete(c));
        }
        for (cursor_t c(list); !c.at_end(); list.next(c)) {
        }
        pool.flush_deferred_releases();
        pool.drain_retired();
        auto r = lfll::audit_list(list);
        EXPECT_TRUE(r.ok) << r.error << " (deferred_release=" << deferred << ")";
        EXPECT_EQ(pool.retired_count(), 0u);
        return contents(list);
    };
    EXPECT_EQ(run(0), run(1));
    EXPECT_EQ(run(1), (std::vector<char>{'o', 'p', 'q'}));
}

/// Batch sweep rejection, staged deterministically: park a scan mid-hop
/// is not possible from outside, but a churn storm on a tiny pool under
/// high-preemption schedules forces batch_commit to fail its incarnation
/// sweep (recycled snapshot nodes) and fall back — while every value the
/// scan yields must still be one that was inserted at some point.
TEST(TraverseFastPath, PinnedSeed_BatchSweepSurvivesRecycleStorm) {
    for (std::uint64_t seed : {5ull, 11ull, 19ull, 31ull, 47ull}) {
        list_t list(8);
        for (char v : {'A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J'}) {
            append(list, v);
        }
        std::vector<std::function<void()>> bodies;
        bodies.push_back([&list] {  // long-segment scans: batches of 8
            for (int round = 0; round < 4; ++round) {
                int seen = 0;
                list.scan([&seen](const char& v) {
                    EXPECT_GE(v, 'A');
                    EXPECT_LE(v, 'J');
                    return ++seen < 64;  // defensive bound
                });
            }
        });
        for (int t = 0; t < 2; ++t) {
            bodies.push_back([&list, t] {  // churners across the segment
                for (int i = 0; i < 4; ++i) {
                    cursor_t c(list);
                    for (int h = 0; h < 2 * t + i && !c.at_end(); ++h) list.next(c);
                    if (!c.at_end() && list.try_delete(c)) {
                        list.update(c);
                        list.insert(c, static_cast<char>('A' + (t + i) % 10));
                    }
                    c.reset();
                }
            });
        }
        lfll::sched::run(pinned(seed), std::move(bodies));
        list.pool().drain_retired();
        auto r = lfll::audit_list(list);
        EXPECT_TRUE(r.ok) << r.error << "\nseed " << seed
                          << " — replay with LFLL_SCHED_REPLAY=" << seed;
    }
}

}  // namespace
