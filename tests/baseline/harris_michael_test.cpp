// Harris-Michael list semantics and stress, across all three reclaimers.
// Typed test suite: every behaviour must hold regardless of reclamation.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "lfll/baseline/harris_michael_list.hpp"
#include "lfll/primitives/rng.hpp"
#include "lfll/reclaim/epoch.hpp"
#include "lfll/reclaim/leaky.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

template <typename Domain>
struct HarrisMichael : public ::testing::Test {
    using list_t = harris_michael_list<int, int, Domain>;
};

using Domains = ::testing::Types<hazard_domain, epoch_domain, leaky_domain>;
TYPED_TEST_SUITE(HarrisMichael, Domains);

TYPED_TEST(HarrisMichael, InsertFindErase) {
    typename TestFixture::list_t l;
    EXPECT_TRUE(l.insert(2, 20));
    EXPECT_TRUE(l.insert(1, 10));
    EXPECT_TRUE(l.insert(3, 30));
    EXPECT_EQ(l.find(1), 10);
    EXPECT_EQ(l.find(2), 20);
    EXPECT_EQ(l.find(3), 30);
    EXPECT_EQ(l.find(4), std::nullopt);
    EXPECT_TRUE(l.erase(2));
    EXPECT_FALSE(l.contains(2));
    EXPECT_FALSE(l.erase(2));
    EXPECT_EQ(l.size_slow(), 2u);
}

TYPED_TEST(HarrisMichael, DuplicateInsertRejected) {
    typename TestFixture::list_t l;
    EXPECT_TRUE(l.insert(5, 1));
    EXPECT_FALSE(l.insert(5, 2));
    EXPECT_EQ(l.find(5), 1);
}

TYPED_TEST(HarrisMichael, EraseFromEmptyFails) {
    typename TestFixture::list_t l;
    EXPECT_FALSE(l.erase(7));
}

TYPED_TEST(HarrisMichael, ManyKeysRoundTrip) {
    typename TestFixture::list_t l;
    for (int k = 0; k < 300; ++k) ASSERT_TRUE(l.insert(k, k * 2));
    for (int k = 0; k < 300; ++k) ASSERT_EQ(l.find(k), k * 2);
    for (int k = 0; k < 300; k += 3) ASSERT_TRUE(l.erase(k));
    for (int k = 0; k < 300; ++k) ASSERT_EQ(l.contains(k), k % 3 != 0);
}

TYPED_TEST(HarrisMichael, ConcurrentSetSemantics) {
    typename TestFixture::list_t l;
    constexpr int kThreads = 6;
    constexpr int kKeys = 32;
    const int kOps = scaled(3000);
    std::vector<std::vector<long>> ins(kThreads, std::vector<long>(kKeys, 0));
    std::vector<std::vector<long>> del(kThreads, std::vector<long>(kKeys, 0));
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0xbeef + static_cast<std::uint64_t>(t) * 31337);
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kOps; ++i) {
                const int k = static_cast<int>(rng.next_below(kKeys));
                switch (rng.next() % 3) {
                    case 0:
                        if (l.insert(k, k + 100)) ins[t][k]++;
                        break;
                    case 1:
                        if (l.erase(k)) del[t][k]++;
                        break;
                    default: {
                        auto v = l.find(k);
                        if (v.has_value()) {
                            EXPECT_EQ(*v, k + 100);
                        }
                        break;
                    }
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();

    for (int k = 0; k < kKeys; ++k) {
        long balance = 0;
        for (int t = 0; t < kThreads; ++t) balance += ins[t][k] - del[t][k];
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(balance == 1, l.contains(k)) << "key " << k;
    }
}

TEST(HarrisMichaelHP, RetiredNodesAreEventuallyFreed) {
    harris_michael_list<int, int, hazard_domain> l;
    for (int round = 0; round < scaled(500); ++round) {
        ASSERT_TRUE(l.insert(1, round));
        ASSERT_TRUE(l.erase(1));
    }
    l.domain().drain();
    // 500 nodes retired; after drain at most a scan-threshold's worth may
    // linger in per-group lists (none should be protected).
    EXPECT_EQ(l.domain().retired_count(), 0u);
}

}  // namespace
