// Locked and universal baselines: identical semantics to the lock-free
// dictionary, verified with the same ledger technique so benches compare
// apples to apples.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "lfll/baseline/coarse_list.hpp"
#include "lfll/baseline/fine_list.hpp"
#include "lfll/baseline/locked_hash_map.hpp"
#include "lfll/baseline/universal_set.hpp"
#include "lfll/primitives/mcs_lock.hpp"
#include "lfll/primitives/rng.hpp"
#include "lfll/primitives/ticket_lock.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

template <typename Map>
void check_basic_semantics(Map& m) {
    EXPECT_TRUE(m.insert(2, 20));
    EXPECT_TRUE(m.insert(1, 10));
    EXPECT_FALSE(m.insert(2, 21));
    EXPECT_EQ(m.find(1), 10);
    EXPECT_EQ(m.find(2), 20);
    EXPECT_EQ(m.find(3), std::nullopt);
    EXPECT_TRUE(m.erase(1));
    EXPECT_FALSE(m.erase(1));
    EXPECT_FALSE(m.contains(1));
    EXPECT_TRUE(m.contains(2));
}

TEST(CoarseList, BasicSemanticsMutex) {
    coarse_list_map<int, int, std::mutex> m;
    check_basic_semantics(m);
}

TEST(CoarseList, BasicSemanticsTas) {
    coarse_list_map<int, int, tas_lock> m;
    check_basic_semantics(m);
}

TEST(CoarseList, BasicSemanticsTtas) {
    coarse_list_map<int, int, ttas_lock> m;
    check_basic_semantics(m);
}

TEST(CoarseList, BasicSemanticsTicket) {
    coarse_list_map<int, int, ticket_lock> m;
    check_basic_semantics(m);
}

TEST(CoarseList, BasicSemanticsMcs) {
    coarse_list_map<int, int, mcs_basic_lock> m;
    check_basic_semantics(m);
}

TEST(FineList, BasicSemantics) {
    fine_list_map<int, int> m;
    check_basic_semantics(m);
}

TEST(UniversalSet, BasicSemantics) {
    universal_set<int, int> m;
    check_basic_semantics(m);
}

TEST(LockedHashMap, BasicSemantics) {
    locked_hash_map<int, int> m(16);
    check_basic_semantics(m);
}

template <typename Map>
void concurrent_ledger_check(Map& m, int threads, int keys, int ops) {
    ops = scaled(ops);
    std::vector<std::vector<long>> ins(threads, std::vector<long>(keys, 0));
    std::vector<std::vector<long>> del(threads, std::vector<long>(keys, 0));
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0xdead + static_cast<std::uint64_t>(t) * 65537);
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < ops; ++i) {
                const int k = static_cast<int>(rng.next_below(keys));
                switch (rng.next() % 3) {
                    case 0:
                        if (m.insert(k, k)) ins[t][k]++;
                        break;
                    case 1:
                        if (m.erase(k)) del[t][k]++;
                        break;
                    default:
                        (void)m.find(k);
                        break;
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();
    for (int k = 0; k < keys; ++k) {
        long balance = 0;
        for (int t = 0; t < threads; ++t) balance += ins[t][k] - del[t][k];
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(balance == 1, m.contains(k)) << "key " << k;
    }
}

TEST(CoarseList, ConcurrentSemanticsTtas) {
    coarse_list_map<int, int, ttas_lock> m;
    concurrent_ledger_check(m, 6, 32, 3000);
}

TEST(CoarseList, ConcurrentSemanticsMcs) {
    coarse_list_map<int, int, mcs_basic_lock> m;
    concurrent_ledger_check(m, 6, 32, 2000);
}

TEST(FineList, ConcurrentSemantics) {
    fine_list_map<int, int> m;
    concurrent_ledger_check(m, 6, 32, 2000);
}

TEST(UniversalSet, ConcurrentSemantics) {
    universal_set<int, int> m;
    concurrent_ledger_check(m, 6, 32, 1500);
}

TEST(LockedHashMap, ConcurrentSemantics) {
    locked_hash_map<int, int> m(16);
    concurrent_ledger_check(m, 6, 128, 3000);
}

TEST(UniversalSet, SnapshotIsolation) {
    // A reader's view must be a consistent snapshot even mid-update.
    universal_set<int, int> m;
    for (int k = 0; k < 100; ++k) m.insert(k, k);
    std::atomic<bool> stop{false};
    std::thread writer([&] {
        int round = 0;
        while (!stop.load(std::memory_order_acquire)) {
            m.erase(round % 100);
            m.insert(round % 100, round % 100);
            ++round;
        }
    });
    for (int i = 0; i < scaled(200); ++i) {
        const std::size_t n = m.size();
        EXPECT_GE(n, 99u);
        EXPECT_LE(n, 100u);
    }
    stop.store(true, std::memory_order_release);
    writer.join();
}

}  // namespace
