// Sampled-profiler unit tests: deterministic sampling rate, exclusive
// phase accounting, the space-saving hot-key sketch against exact counts,
// and the slow-op ring's wraparound/concurrent-writer behaviour. The
// sketch/ring cases run on private instances so they are exact; the
// op_scope cases use the real thread-local sampler with the runtime
// overrides, restoring defaults on exit.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/telemetry/profiler.hpp"
#include "test_scale.hpp"

namespace {

namespace prof = lfll::telemetry::prof;
using namespace prof;  // NOLINT: scopes/knobs; qualified below where ambiguous

/// Restores profiler knobs on scope exit so tests don't leak overrides.
struct override_guard {
    ~override_guard() {
        set_enabled_override(-1);
        set_rate_override(-1);
        set_slow_ns_override(-1);
    }
};

void spin_ns(std::uint64_t ns) {
    const auto t0 = std::chrono::steady_clock::now();
    while (std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - t0)
               .count() < static_cast<std::int64_t>(ns)) {
    }
}

// ------------------------------------------------------------- sampling

TEST(ProfilerSampling, FixedSeedYieldsExactSampleCount) {
    override_guard restore;
    set_enabled_override(1);
    set_rate_override(16);
    set_slow_ns_override(1 << 30);  // no slow captures from this test

    constexpr std::uint64_t kSeed = 0xDEADBEEFCAFEULL;
    constexpr int kOps = 5000;

    // Replay the sampler's exact gap sequence: reseed() seeds the raw
    // xorshift64* state and draws one countdown, then every arm() draws
    // the next gap from the same stream.
    std::uint64_t s = kSeed;
    std::uint64_t countdown = prof::detail::next_gap(s, 16);
    std::uint64_t expected = 0;
    for (int i = 0; i < kOps; ++i) {
        if (--countdown == 0) {
            ++expected;
            countdown = prof::detail::next_gap(s, 16);
        }
    }
    ASSERT_GT(expected, 0u);

    prof::testing::reseed(kSeed);
    const std::uint64_t before = prof::testing::thread_sample_count();
    for (int i = 0; i < kOps; ++i) {
        op_scope op(lfll::telemetry::trace_op::find, static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(prof::testing::thread_sample_count() - before, expected);

    // Mean gap sanity: with rate 16, 5000 ops should sample well away
    // from both "never" and "every op".
    EXPECT_GT(expected, static_cast<std::uint64_t>(kOps) / 64);
    EXPECT_LT(expected, static_cast<std::uint64_t>(kOps));
}

TEST(ProfilerSampling, DisabledStillDrainsCountdownButNeverArms) {
    override_guard restore;
    set_enabled_override(0);
    set_rate_override(4);
    prof::testing::reseed(7);
    const std::uint64_t before = prof::testing::thread_sample_count();
    for (int i = 0; i < 1000; ++i) {
        op_scope op(lfll::telemetry::trace_op::insert, 1);
    }
    EXPECT_EQ(prof::testing::thread_sample_count(), before);
}

TEST(ProfilerSampling, RateOneThroughRealMapSamplesEveryOp) {
    override_guard restore;
    set_enabled_override(1);
    set_rate_override(1);
    set_slow_ns_override(1 << 30);
    lfll::sorted_list_map<int, int> m;
    prof::testing::reseed(3);
    const std::uint64_t before = prof::testing::thread_sample_count();
    ASSERT_TRUE(m.insert(1, 10));
    ASSERT_TRUE(m.find(1).has_value());
    ASSERT_TRUE(m.erase(1));
    EXPECT_EQ(prof::testing::thread_sample_count() - before, 3u);
    EXPECT_EQ(prof::testing::last_sample().op, lfll::telemetry::trace_op::erase);
    EXPECT_EQ(prof::testing::last_sample().key, lfll::telemetry::key_hash(1));
}

// -------------------------------------------------------- phase nesting

TEST(ProfilerPhases, NestedScopesAccountExclusiveTime) {
    override_guard restore;
    set_enabled_override(1);
    set_slow_ns_override(1 << 30);
    prof::testing::force_sample_next();
    constexpr std::uint64_t kSlice = 2'000'000;  // 2 ms per segment
    {
        op_scope op(lfll::telemetry::trace_op::insert, 42);
        spin_ns(kSlice);  // traverse (default)
        {
            phase_scope alloc_phase(phase::alloc);
            spin_ns(kSlice);
            {
                // Doubly nested: reclaim inside alloc inside traverse.
                phase_scope reclaim_phase(phase::reclaim);
                spin_ns(kSlice);
            }
            spin_ns(kSlice);  // back in alloc
        }
        spin_ns(kSlice);  // back in traverse
    }
    const op_ctx& c = prof::testing::last_sample();
    ASSERT_EQ(c.op, lfll::telemetry::trace_op::insert);

    // Exclusive attribution: each phase holds its own segments only.
    const std::uint64_t traverse = c.phase_ns[static_cast<int>(phase::traverse)];
    const std::uint64_t alloc = c.phase_ns[static_cast<int>(phase::alloc)];
    const std::uint64_t reclaim = c.phase_ns[static_cast<int>(phase::reclaim)];
    EXPECT_GE(traverse, 2 * kSlice);
    EXPECT_GE(alloc, 2 * kSlice);
    EXPECT_GE(reclaim, kSlice);
    // No double counting: if alloc time also landed in traverse, the sum
    // would exceed the wall total. The segments telescope, so the phase
    // sum equals total_ns exactly.
    std::uint64_t sum = 0;
    for (int i = 0; i < phase_count; ++i) sum += c.phase_ns[i];
    EXPECT_EQ(sum, c.total_ns);
    EXPECT_LT(traverse, c.total_ns - alloc - reclaim + 1);
}

TEST(ProfilerPhases, PhaseScopeInertWithoutArmedSample) {
    override_guard restore;
    set_enabled_override(0);
    // No armed op: scopes must not touch any context.
    phase_scope p1(phase::alloc);
    phase_scope p2(phase::reclaim);
    SUCCEED();
}

// ------------------------------------------------------ hot-key sketch

TEST(HotKeySketch, TracksZipfHeavyHittersAgainstExactCounts) {
    hotkey_sketch sk;
    // Deterministic Zipf-ish stream: key k in [0, 1000) drawn with weight
    // ~ 1/(k+1) via inverse-CDF over a harmonic table, from a fixed
    // xorshift stream. ~8x more distinct keys than sketch slots, so
    // eviction is exercised throughout.
    constexpr std::size_t kKeys = 1000;
    constexpr int kTouches = 200000;
    std::vector<double> cdf(kKeys);
    double acc = 0;
    for (std::size_t k = 0; k < kKeys; ++k) {
        acc += 1.0 / static_cast<double>(k + 1);
        cdf[k] = acc;
    }
    std::uint64_t s = 0x1234567890ABCDEFULL;
    std::map<std::uint64_t, std::uint64_t> exact;
    for (int i = 0; i < kTouches; ++i) {
        const double u =
            static_cast<double>(prof::detail::sample_next(s) >> 11) / 9007199254740992.0 * acc;
        const std::size_t k = static_cast<std::size_t>(
            std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
        // The hottest key also accrues CAS failures; others none.
        sk.touch(k, k == 0 ? 2 : 0, static_cast<std::int64_t>(k % 4));
        exact[k]++;
    }

    const auto top = sk.top(10);
    ASSERT_EQ(top.size(), 10u);

    // Exact top-5 by count.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(exact.begin(),
                                                                exact.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (int i = 0; i < 5; ++i) {
        const std::uint64_t want = sorted[static_cast<std::size_t>(i)].first;
        const bool found = std::any_of(top.begin(), top.end(),
                                       [&](const auto& e) { return e.key == want; });
        EXPECT_TRUE(found) << "exact top-5 key " << want << " missing from sketch top-10";
    }
    // Space-saving overestimate: a reported count never undershoots the
    // true count (inheritance only inflates).
    for (const auto& e : top) {
        const auto it = exact.find(e.key);
        if (it != exact.end()) EXPECT_GE(e.hits, it->second);
    }
    // The hottest key carries its CAS-failure attribution and last shard.
    ASSERT_EQ(top[0].key, sorted[0].first);
    EXPECT_EQ(top[0].cas_failures, 2 * exact.at(top[0].key));
    EXPECT_EQ(top[0].shard, static_cast<std::int64_t>(top[0].key % 4));
}

TEST(HotKeySketch, ConcurrentTouchesStayConsistent) {
    hotkey_sketch sk;
    constexpr int kThreads = 4;
    const int per_thread = lfll_test::scaled(50000);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&sk, t, per_thread] {
            std::uint64_t s = 0x9E3779B97F4A7C15ULL * static_cast<std::uint64_t>(t + 1);
            for (int i = 0; i < per_thread; ++i) {
                // Hot head (0-7 most of the time) + cold tail.
                const std::uint64_t r = prof::detail::sample_next(s);
                const std::uint64_t key = (r % 4 != 0) ? (r >> 32) % 8 : (r >> 16) % 512;
                sk.touch(key, 1, static_cast<std::int64_t>(t));
            }
        });
    }
    for (auto& th : ts) th.join();
    const auto top = sk.top(8);
    ASSERT_FALSE(top.empty());
    // The hot head dominates: every one of keys 0..7 must be resident.
    for (std::uint64_t k = 0; k < 8; ++k) {
        EXPECT_TRUE(std::any_of(top.begin(), top.end(),
                                [&](const auto& e) { return e.key == k; }))
            << "hot key " << k << " evicted";
    }
}

// -------------------------------------------------------- slow-op ring

slow_op_record make_record(std::uint64_t marker) {
    slow_op_record r;
    r.ts_ns = marker;
    r.key = marker * 3 + 1;
    r.total_ns = marker + 7;
    r.cas_failures = marker % 5;
    for (int i = 0; i < phase_count; ++i)
        r.phase_ns[i] = marker + static_cast<std::uint64_t>(i);
    r.shard = static_cast<std::int64_t>(marker % 4);
    for (int i = 0; i < 4; ++i) r.health[i] = static_cast<std::int64_t>(marker + 100 + i);
    r.tid = static_cast<std::uint32_t>(marker % 31);
    r.op = static_cast<std::uint16_t>(marker % 11);
    return r;
}

void expect_consistent(const slow_op_record& r) {
    const std::uint64_t marker = r.ts_ns;
    EXPECT_EQ(r.key, marker * 3 + 1);
    EXPECT_EQ(r.total_ns, marker + 7);
    EXPECT_EQ(r.cas_failures, marker % 5);
    for (int i = 0; i < phase_count; ++i)
        EXPECT_EQ(r.phase_ns[i], marker + static_cast<std::uint64_t>(i));
    EXPECT_EQ(r.shard, static_cast<std::int64_t>(marker % 4));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(r.health[i], static_cast<std::int64_t>(marker + 100 + i));
    EXPECT_EQ(r.tid, static_cast<std::uint32_t>(marker % 31));
    EXPECT_EQ(r.op, static_cast<std::uint16_t>(marker % 11));
}

TEST(SlowOpRing, WraparoundKeepsNewestRecords) {
    slow_op_ring ring;
    constexpr std::uint64_t kPushes = 3 * slow_op_ring::capacity + 11;
    for (std::uint64_t i = 0; i < kPushes; ++i) ring.push(make_record(i));
    EXPECT_EQ(ring.head(), kPushes);

    std::vector<slow_op_record> out;
    const std::uint64_t cursor = ring.collect(0, out);
    EXPECT_EQ(cursor, kPushes);
    // Quiescent: exactly the newest `capacity` records, in ticket order.
    ASSERT_EQ(out.size(), slow_op_ring::capacity);
    for (std::size_t i = 0; i < out.size(); ++i) {
        EXPECT_EQ(out[i].ts_ns, kPushes - slow_op_ring::capacity + i);
        expect_consistent(out[i]);
    }

    // The cursor is a high-water mark: nothing new, nothing re-read.
    out.clear();
    EXPECT_EQ(ring.collect(cursor, out), kPushes);
    EXPECT_TRUE(out.empty());

    ring.push(make_record(kPushes));
    EXPECT_EQ(ring.collect(cursor, out), kPushes + 1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].ts_ns, kPushes);
}

TEST(SlowOpRing, ConcurrentWritersNeverTearRecords) {
    slow_op_ring ring;
    constexpr int kWriters = 4;
    const std::uint64_t per_writer =
        static_cast<std::uint64_t>(lfll_test::scaled_min(4000, 200));
    std::atomic<bool> stop_reader{false};
    std::uint64_t reads = 0;

    std::thread reader([&] {
        std::uint64_t cursor = 0;
        std::vector<slow_op_record> out;
        while (!stop_reader.load(std::memory_order_acquire)) {
            out.clear();
            cursor = ring.collect(cursor, out);
            for (const slow_op_record& r : out) {
                expect_consistent(r);  // seqlock: torn reads must be discarded
                ++reads;
            }
            std::this_thread::yield();
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&ring, w, per_writer] {
            for (std::uint64_t i = 0; i < per_writer; ++i) {
                ring.push(make_record(static_cast<std::uint64_t>(w) * per_writer + i));
            }
        });
    }
    for (auto& th : writers) th.join();
    stop_reader.store(true, std::memory_order_release);
    reader.join();

    EXPECT_EQ(ring.head(), kWriters * per_writer);
    // Final quiescent sweep: the last `capacity` records all verify.
    std::vector<slow_op_record> out;
    ring.collect(ring.head() > slow_op_ring::capacity
                     ? ring.head() - slow_op_ring::capacity
                     : 0,
                 out);
    EXPECT_EQ(out.size(), slow_op_ring::capacity);
    for (const slow_op_record& r : out) expect_consistent(r);
}

// ----------------------------------------------------- publication path

TEST(ProfilerPublish, HotKeyGaugesAndSlowOpJsonl) {
    override_guard restore;
    set_enabled_override(1);
    set_rate_override(1);
    set_slow_ns_override(0);  // every sample is a slow capture
    const std::uint64_t cursor0 = slow_ring().head();
    prof::testing::force_sample_next();
    {
        op_scope op(lfll::telemetry::trace_op::insert, 777);
        phase_scope ph(phase::alloc);
        spin_ns(1000);
    }
    publish();
    // The sampled key must be resident in some published rank.
    auto& reg = lfll::telemetry::registry::global();
    bool found = false;
    for (std::size_t r = 0; r < topk(); ++r) {
        const std::string label = "rank=\"" + std::to_string(r) + "\"";
        if (reg.get_gauge("lfll_prof_hot_key", label).value() == 777) found = true;
    }
    EXPECT_TRUE(found);

    std::string out;
    std::uint64_t cursor = cursor0;
    append_slow_ops_jsonl(out, cursor);
    EXPECT_GT(cursor, cursor0);
    EXPECT_NE(out.find("\"slow_op\""), std::string::npos);
    EXPECT_NE(out.find("\"op\":\"insert\""), std::string::npos);
    EXPECT_NE(out.find("\"key\":777"), std::string::npos);
    EXPECT_NE(out.find("\"alloc\":"), std::string::npos);
    EXPECT_NE(out.find("\"health\""), std::string::npos);
}

}  // namespace
