// Telemetry subsystem: registry primitives, exporter formats, the trace
// round-trip, and the policy-health gauges typed over all three memory
// policies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/memory/policy.hpp"
#include "lfll/primitives/instrument.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"
#include "lfll/telemetry/exporter.hpp"
#include "lfll/telemetry/metrics.hpp"
#include "lfll/telemetry/trace.hpp"

namespace {

using namespace lfll::telemetry;

// ---------------------------------------------------------------- counter

TEST(Counter, FoldsConcurrentShardedAdds) {
    counter c;
    constexpr int kThreads = 8;
    constexpr std::uint64_t kPerThread = 10000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&c] {
            for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
    c.clear();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAddValue) {
    gauge g;
    EXPECT_EQ(g.value(), 0);
    g.set(42);
    EXPECT_EQ(g.value(), 42);
    g.add(-50);
    EXPECT_EQ(g.value(), -8);
}

// -------------------------------------------------------------- histogram

TEST(Histogram, BucketBoundaries) {
    // Bucket b holds values of bit width b: 0 -> 0, [2^(b-1), 2^b - 1] -> b.
    EXPECT_EQ(histogram::bucket_of(0), 0);
    EXPECT_EQ(histogram::bucket_of(1), 1);
    EXPECT_EQ(histogram::bucket_of(2), 2);
    EXPECT_EQ(histogram::bucket_of(3), 2);
    EXPECT_EQ(histogram::bucket_of(4), 3);
    EXPECT_EQ(histogram::bucket_of(1023), 10);
    EXPECT_EQ(histogram::bucket_of(1024), 11);
    EXPECT_EQ(histogram::bucket_of(~std::uint64_t{0}), 63);

    EXPECT_EQ(histogram::bucket_bound(0), 0u);
    EXPECT_EQ(histogram::bucket_bound(1), 1u);
    EXPECT_EQ(histogram::bucket_bound(10), 1023u);
    EXPECT_EQ(histogram::bucket_bound(63), ~std::uint64_t{0});

    // Every bucket's bound is exactly the largest value it accepts.
    for (int b = 0; b < histogram::bucket_count - 1; ++b) {
        EXPECT_EQ(histogram::bucket_of(histogram::bucket_bound(b)), b);
        EXPECT_EQ(histogram::bucket_of(histogram::bucket_bound(b) + 1), b + 1);
    }
}

TEST(Histogram, RecordCountSumBuckets) {
    histogram h;
    h.record(0);
    h.record(1);
    h.record(5);    // bucket 3 ([4,7])
    h.record(5);
    h.record(100);  // bucket 7 ([64,127])
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 111u);
    const auto b = h.buckets();
    EXPECT_EQ(b[0], 1u);
    EXPECT_EQ(b[1], 1u);
    EXPECT_EQ(b[3], 2u);
    EXPECT_EQ(b[7], 1u);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
}

TEST(Histogram, ConcurrentRecordsFold) {
    histogram h;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 5000;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&h] {
            for (int i = 0; i < kPerThread; ++i) h.record(7);
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
    EXPECT_EQ(h.sum(), static_cast<std::uint64_t>(kThreads * kPerThread) * 7u);
}

// --------------------------------------------------------------- registry

TEST(Registry, IdentityIsNameAndLabels) {
    auto& reg = registry::global();
    counter& a = reg.get_counter("telemetry_test_ident");
    counter& b = reg.get_counter("telemetry_test_ident");
    counter& c = reg.get_counter("telemetry_test_ident", R"(policy="x")");
    EXPECT_EQ(&a, &b);
    EXPECT_NE(&a, &c);

    gauge& g1 = reg.get_gauge("telemetry_test_g", R"(policy="x")");
    gauge& g2 = reg.get_gauge("telemetry_test_g", R"(policy="y")");
    EXPECT_NE(&g1, &g2);
}

TEST(Registry, SnapshotContainsRegisteredRows) {
    auto& reg = registry::global();
    reg.get_counter("telemetry_test_snap_c").add(7);
    reg.get_gauge("telemetry_test_snap_g", R"(policy="z")").set(-3);
    reg.get_histogram("telemetry_test_snap_h").record(9);

    bool saw_c = false, saw_g = false, saw_h = false;
    for (const metric_row& r : reg.snapshot()) {
        if (r.name == "telemetry_test_snap_c") {
            saw_c = true;
            EXPECT_EQ(r.kind, metric_kind::counter);
            EXPECT_GE(r.value, 7.0);
        } else if (r.name == "telemetry_test_snap_g") {
            saw_g = true;
            EXPECT_EQ(r.kind, metric_kind::gauge);
            EXPECT_EQ(r.labels, R"(policy="z")");
            EXPECT_EQ(r.value, -3.0);
        } else if (r.name == "telemetry_test_snap_h") {
            saw_h = true;
            EXPECT_EQ(r.kind, metric_kind::histogram);
            EXPECT_GE(r.hist_count, 1u);
            EXPECT_GE(r.hist_sum, 9u);
        }
    }
    EXPECT_TRUE(saw_c);
    EXPECT_TRUE(saw_g);
    EXPECT_TRUE(saw_h);
}

TEST(Registry, SnapshotFoldsOpCounterBackend) {
    lfll::instrument::reset();
    lfll::instrument::tls().cas_attempts.add(5);
    lfll::instrument::tls().aux_hops.add(2);

    double cas = -1, hops = -1;
    for (const metric_row& r : registry::global().snapshot()) {
        if (r.name == "lfll_op_cas_attempts_total") cas = r.value;
        if (r.name == "lfll_op_aux_hops_total") hops = r.value;
    }
    EXPECT_EQ(cas, 5.0);
    EXPECT_EQ(hops, 2.0);
    lfll::instrument::reset();
}

TEST(Registry, HistogramQuantileFromBuckets) {
    auto& reg = registry::global();
    histogram& h = reg.get_histogram("telemetry_test_quant");
    h.clear();
    for (int i = 0; i < 99; ++i) h.record(10);   // bucket 4, bound 15
    h.record(1000000);                           // far tail
    for (const metric_row& r : reg.snapshot()) {
        if (r.name != "telemetry_test_quant") continue;
        EXPECT_EQ(r.quantile(0.50), 15.0);
        // The single far-tail sample is the maximum: q=1 must reach its
        // bucket (bound 2^20 - 1), not the bulk's.
        EXPECT_EQ(r.quantile(1.0), 1048575.0);
        EXPECT_GT(r.quantile(1.0), r.quantile(0.5));
    }
}

// -------------------------------------------------------------- exporters

TEST(Exporter, PrometheusTextFormat) {
    auto& reg = registry::global();
    reg.get_counter("telemetry_test_prom_total", R"(policy="epoch")").add(3);
    reg.get_histogram("telemetry_test_prom_hist").record(5);
    const std::string text = render_prometheus(reg.snapshot());

    EXPECT_NE(text.find("# TYPE telemetry_test_prom_total counter"),
              std::string::npos);
    EXPECT_NE(text.find("telemetry_test_prom_total{policy=\"epoch\"} 3"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE telemetry_test_prom_hist histogram"),
              std::string::npos);
    // Cumulative buckets: value 5 lands in le="7"; +Inf must equal _count.
    EXPECT_NE(text.find("telemetry_test_prom_hist_bucket{le=\"7\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("telemetry_test_prom_hist_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("telemetry_test_prom_hist_sum 5"), std::string::npos);
    EXPECT_NE(text.find("telemetry_test_prom_hist_count 1"), std::string::npos);
}

TEST(Exporter, JsonlEscapesLabelQuotes) {
    std::vector<metric_row> rows(1);
    rows[0].name = "m";
    rows[0].labels = R"(policy="epoch")";
    rows[0].kind = metric_kind::gauge;
    rows[0].value = 4;
    const std::string line = render_jsonl(rows, 123);
    EXPECT_EQ(line,
              "{\"ts_ms\":123,\"metrics\":{\"m{policy=\\\"epoch\\\"}\":4}}\n");
}

TEST(Exporter, JsonlBalancedAndOneLine) {
    const std::string line = render_jsonl(registry::global().snapshot(), 1);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '\n');
    EXPECT_EQ(line.find('\n'), line.size() - 1);  // single line
    // Braces balance outside strings — cheap well-formedness check.
    int depth = 0;
    bool in_str = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
        const char c = line[i];
        if (in_str) {
            if (c == '\\') ++i;
            else if (c == '"') in_str = false;
        } else if (c == '"') {
            in_str = true;
        } else if (c == '{') {
            ++depth;
        } else if (c == '}') {
            --depth;
            EXPECT_GE(depth, 0);
        }
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_str);
}

// ------------------------------------------------------- trace round-trip

TEST(Trace, ChromeJsonSchemaRoundTrip) {
    trace_reset();
    {
        // Generate some ops; with LFLL_TRACE off these leave no events.
        lfll::sorted_list_map<int, int> m(256);
        for (int i = 0; i < 32; ++i) m.insert(i, i);
        for (int i = 0; i < 32; i += 2) m.erase(i);
        for (int i = 0; i < 32; ++i) (void)m.contains(i);
    }
    const std::string json = chrome_trace_json();
    // Always a valid Chrome trace envelope.
    EXPECT_EQ(json.rfind("{\"displayTimeUnit\":", 0), 0u);
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_EQ(json.back(), '}');

    if constexpr (trace_enabled) {
        EXPECT_GT(trace_event_count(), 0u);
        EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
        EXPECT_NE(json.find("\"name\":\"insert\""), std::string::npos);
        EXPECT_NE(json.find("\"name\":\"erase\""), std::string::npos);
        EXPECT_NE(json.find("\"name\":\"find\""), std::string::npos);
        EXPECT_NE(json.find("\"ts\":"), std::string::npos);
        EXPECT_NE(json.find("\"dur\":"), std::string::npos);
        EXPECT_NE(json.find("\"key_hash\":"), std::string::npos);
    } else {
        EXPECT_EQ(trace_event_count(), 0u);
        EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
    }
    trace_reset();
}

// ------------------------------------- policy health gauges, typed matrix

template <typename Policy>
class PolicyTelemetry : public ::testing::Test {};

class PolicyNames {
public:
    template <typename Policy>
    static std::string GetName(int) {
        return Policy::name;
    }
};

using AllPolicies =
    ::testing::Types<lfll::valois_refcount, lfll::hazard_policy, lfll::epoch_policy>;
TYPED_TEST_SUITE(PolicyTelemetry, AllPolicies, PolicyNames);

template <typename Policy>
std::string policy_label() {
    return std::string("policy=\"") + Policy::name + "\"";
}

TYPED_TEST(PolicyTelemetry, OpCountersTrackKnownSequence) {
    lfll::instrument::reset();
    const lfll::op_counters before = lfll::instrument::snapshot();
    {
        lfll::sorted_list_map<int, int, std::less<int>, TypeParam> m(512);
        for (int i = 0; i < 64; ++i) ASSERT_TRUE(m.insert(i, i));
        for (int i = 0; i < 64; ++i) ASSERT_TRUE(m.erase(i));
        m.list().pool().drain_retired();
    }
    const lfll::op_counters after = lfll::instrument::snapshot();

    // 64 inserts allocate at least one cell each (plus aux cells); 64
    // uncontended erases retire them all, and the drain recycles every
    // retired node regardless of policy.
    EXPECT_GE(after.nodes_allocated - before.nodes_allocated, 64u);
    EXPECT_GE(after.nodes_reclaimed - before.nodes_reclaimed, 64u);
    EXPECT_GT(after.cells_traversed - before.cells_traversed, 0u);
    EXPECT_GT(after.cas_attempts - before.cas_attempts, 0u);
    // Single-threaded: no contention retries.
    EXPECT_EQ(after.insert_retries - before.insert_retries, 0u);
    EXPECT_EQ(after.delete_retries - before.delete_retries, 0u);
}

TYPED_TEST(PolicyTelemetry, RegistryPublishesOpRowsForPolicy) {
    lfll::instrument::reset();
    {
        lfll::sorted_list_map<int, int, std::less<int>, TypeParam> m(512);
        for (int i = 0; i < 16; ++i) m.insert(i, i);
    }
    double allocated = 0;
    for (const metric_row& r : registry::global().snapshot()) {
        if (r.name == "lfll_op_nodes_allocated_total") allocated = r.value;
    }
    EXPECT_GE(allocated, 16.0);
    lfll::instrument::reset();
}

TYPED_TEST(PolicyTelemetry, RetiredBacklogGaugeTracksDrain) {
    auto& reg = registry::global();
    gauge& backlog =
        reg.get_gauge("lfll_retired_backlog", policy_label<TypeParam>());

    lfll::sorted_list_map<int, int, std::less<int>, TypeParam> m(512);
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(m.insert(i, i));
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(m.erase(i));

    const std::int64_t after_erase = backlog.value();
    EXPECT_GE(after_erase, 0);
    if constexpr (TypeParam::deferred) {
        // Deferred policies bank retired nodes; 64 erasures must have
        // left a visible backlog sample.
        EXPECT_GT(after_erase, 0);
    }

    // Forced drain: the gauge must fall monotonically to quiescent zero.
    m.list().pool().drain_retired();
    const std::int64_t after_drain = backlog.value();
    EXPECT_LE(after_drain, after_erase);
    EXPECT_EQ(after_drain, 0);
    EXPECT_EQ(m.list().pool().retired_count(), 0u);
}

TYPED_TEST(PolicyTelemetry, FreeListDepthGaugeSampled) {
    auto& reg = registry::global();
    lfll::sorted_list_map<int, int, std::less<int>, TypeParam> m(512);
    for (int i = 0; i < 8; ++i) m.insert(i, i);
    for (int i = 0; i < 8; ++i) m.erase(i);
    m.list().pool().drain_retired();
    // The pool registered its gauges under this policy's label and
    // sampled them at the drain boundary just now.
    EXPECT_GT(reg.get_gauge("lfll_pool_capacity", policy_label<TypeParam>()).value(),
              0);
    EXPECT_GT(
        reg.get_gauge("lfll_free_list_depth", policy_label<TypeParam>()).value(), 0);
}

TEST(PolicyGauges, EpochLagAndHazardOccupancyRegistered) {
    auto& reg = registry::global();
    // Exercise both deferred policies so their domain gauges exist.
    {
        lfll::sorted_list_map<int, int, std::less<int>, lfll::hazard_policy> m(256);
        for (int i = 0; i < 32; ++i) m.insert(i, i);
        for (int i = 0; i < 32; ++i) m.erase(i);
        m.list().pool().drain_retired();
    }
    {
        lfll::sorted_list_map<int, int, std::less<int>, lfll::epoch_policy> m(256);
        for (int i = 0; i < 32; ++i) m.insert(i, i);
        for (int i = 0; i < 32; ++i) m.erase(i);
        m.list().pool().drain_retired();
    }
    bool saw_lag = false, saw_occ = false;
    for (const metric_row& r : reg.snapshot()) {
        if (r.name == "lfll_epoch_lag") saw_lag = true;
        if (r.name == "lfll_hazard_slots_occupied") {
            saw_occ = true;
            EXPECT_GE(r.value, 0.0);
        }
    }
    EXPECT_TRUE(saw_lag);
    EXPECT_TRUE(saw_occ);
}

}  // namespace
