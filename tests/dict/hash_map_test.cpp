// Hash-table dictionary (§4.1): bucket routing, semantics, iteration.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "lfll/dict/hash_map.hpp"
#include "lfll/primitives/cacheline.hpp"

namespace {

using namespace lfll;

TEST(HashMap, BucketCountRoundsUpToPowerOfTwo) {
    hash_map<int, int> m(100, 4);
    EXPECT_EQ(m.bucket_count(), 128u);
    hash_map<int, int> one(1, 4);
    EXPECT_EQ(one.bucket_count(), 1u);
}

TEST(HashMap, InsertFindErase) {
    hash_map<int, std::string> m(8, 8);
    EXPECT_TRUE(m.insert(1, "a"));
    EXPECT_TRUE(m.insert(9, "b"));  // same bucket as 1 with 8 buckets
    EXPECT_EQ(m.find(1), "a");
    EXPECT_EQ(m.find(9), "b");
    EXPECT_TRUE(m.erase(1));
    EXPECT_EQ(m.find(1), std::nullopt);
    EXPECT_EQ(m.find(9), "b");
}

TEST(HashMap, DuplicateRejectedAcrossBuckets) {
    hash_map<int, int> m(4, 4);
    EXPECT_TRUE(m.insert(42, 1));
    EXPECT_FALSE(m.insert(42, 2));
    EXPECT_EQ(m.find(42), 1);
}

TEST(HashMap, SingleBucketDegeneratesToSortedList) {
    hash_map<int, int> m(1, 16);
    for (int k = 0; k < 50; ++k) EXPECT_TRUE(m.insert(k, k));
    EXPECT_EQ(m.size_slow(), 50u);
    for (int k = 0; k < 50; ++k) EXPECT_TRUE(m.contains(k));
}

TEST(HashMap, ForEachVisitsEverythingExactlyOnce) {
    hash_map<int, int> m(16, 8);
    for (int k = 0; k < 200; ++k) m.insert(k, k);
    std::set<int> seen;
    m.for_each([&](int k, int v) {
        EXPECT_EQ(k, v);
        EXPECT_TRUE(seen.insert(k).second);
    });
    EXPECT_EQ(seen.size(), 200u);
}

// Read-only sampling (telemetry) holds a `const hash_map&` and must be
// able to size and walk it.
TEST(HashMap, ConstReferenceSupportsSizeAndForEach) {
    hash_map<int, int> m(8, 8);
    for (int k = 0; k < 64; ++k) m.insert(k, k * 3);
    const hash_map<int, int>& cm = m;
    EXPECT_EQ(cm.size_slow(), 64u);
    std::set<int> seen;
    cm.for_each([&](int k, int v) {
        EXPECT_EQ(v, k * 3);
        EXPECT_TRUE(seen.insert(k).second);
    });
    EXPECT_EQ(seen.size(), 64u);
    EXPECT_EQ(cm.bucket_count(), 8u);
    EXPECT_GE(cm.bucket_at(0).size_slow(), 0u);
}

// Adjacent buckets must not share a cache line (the slab pads each slot
// to cache-line multiples).
TEST(HashMap, BucketsAreCacheLineAligned) {
    hash_map<int, int> m(4, 4);
    for (std::size_t i = 0; i < m.bucket_count(); ++i) {
        const auto addr = reinterpret_cast<std::uintptr_t>(&m.bucket_at(i));
        EXPECT_EQ(addr % cacheline_size, 0u) << "bucket " << i;
    }
}

TEST(HashMap, StringKeysSpreadAcrossBuckets) {
    hash_map<std::string, int> m(8, 8);
    EXPECT_TRUE(m.insert("alpha", 1));
    EXPECT_TRUE(m.insert("beta", 2));
    EXPECT_TRUE(m.insert("gamma", 3));
    EXPECT_EQ(m.find("beta"), 2);
    EXPECT_TRUE(m.erase("beta"));
    EXPECT_FALSE(m.contains("beta"));
    EXPECT_EQ(m.size_slow(), 2u);
}

}  // namespace
