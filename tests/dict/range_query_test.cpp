// Functional coverage for the snapshot / range-query layer (vCAS-lite
// versioned links + victim hand-off, core/rq.hpp): bounds semantics,
// tombstone exclusion, revive (replace-cell in the BST), concurrent
// snapshot invariants, and §5 audits proving the layer leaks no counted
// references — typed over all three memory policies.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/bst.hpp"
#include "lfll/dict/skip_list.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/dict/split_ordered_map.hpp"
#include "lfll/primitives/rng.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"
#include "test_scale.hpp"

namespace {

using namespace lfll;

template <typename P>
using flat_map = sorted_list_map<int, int, std::less<int>, P>;
template <typename P>
using so_map = split_ordered_map<int, int, std::hash<int>, std::less<int>, P>;
template <typename P>
using skip_map = skip_list_map<int, int, std::less<int>, P>;
template <typename P>
using bst = bst_set<int, std::less<int>, P>;

/// Whole-structure skip-list audit: all levels share one pool.
template <typename P>
audit_report audit_skip(skip_map<P>& m) {
    std::vector<typename skip_map<P>::list_type*> lists;
    for (int i = 0; i < m.max_level(); ++i) lists.push_back(&m.level(i));
    return audit_shared(m.pool(), lists);
}

template <typename P>
struct RangeQuery : ::testing::Test {};

using Policies = ::testing::Types<valois_refcount, hazard_policy, epoch_policy>;
TYPED_TEST_SUITE(RangeQuery, Policies);

// --------------------------------------------------------------- sorted map

TYPED_TEST(RangeQuery, SortedMapBoundsAndTombstones) {
    flat_map<TypeParam> m{64};
    for (int k = 0; k < 10; ++k) ASSERT_TRUE(m.insert(k, k * 10));

    auto r = m.range_query(3, 7);  // [3, 7)
    ASSERT_EQ(r.size(), 4u);
    for (int i = 0; i < 4; ++i) {
        EXPECT_EQ(r[i].first, 3 + i);
        EXPECT_EQ(r[i].second, (3 + i) * 10);
    }
    EXPECT_TRUE(m.range_query(7, 3).empty());    // empty interval
    EXPECT_TRUE(m.range_query(100, 200).empty());  // past the end

    ASSERT_TRUE(m.erase(4));
    ASSERT_TRUE(m.erase(5));
    r = m.range_query(3, 7);
    ASSERT_EQ(r.size(), 2u);
    EXPECT_EQ(r[0].first, 3);
    EXPECT_EQ(r[1].first, 6);

    ASSERT_TRUE(m.insert(4, 999));  // reinsert after erase
    r = m.range_query(3, 7);
    ASSERT_EQ(r.size(), 3u);
    EXPECT_EQ(r[1].first, 4);
    EXPECT_EQ(r[1].second, 999);

    auto snap = m.snapshot();
    EXPECT_EQ(snap.size(), 9u);
    EXPECT_TRUE(std::is_sorted(snap.begin(), snap.end()));

    auto rep = audit_list(m.list());
    EXPECT_TRUE(rep.ok) << rep.error;
}

// --------------------------------------------------------- split-ordered map

TYPED_TEST(RangeQuery, SplitOrderedSortedOutputAcrossResizes) {
    so_map<TypeParam> m(2, 32);  // tiny directory: splits happen immediately
    for (int k = 0; k < 200; ++k) ASSERT_TRUE(m.insert(k, k));
    auto r = m.range_query(50, 150);
    ASSERT_EQ(r.size(), 100u);
    EXPECT_TRUE(std::is_sorted(r.begin(), r.end()));
    EXPECT_EQ(r.front().first, 50);
    EXPECT_EQ(r.back().first, 149);

    for (int k = 0; k < 200; k += 2) ASSERT_TRUE(m.erase(k));
    auto snap = m.snapshot();
    ASSERT_EQ(snap.size(), 100u);
    for (const auto& kv : snap) EXPECT_EQ(kv.first % 2, 1);
}

// ----------------------------------------------------------------- skip list

TYPED_TEST(RangeQuery, SkipListAnchoredRange) {
    skip_map<TypeParam> m{512, 6};
    for (int k = 0; k < 100; ++k) ASSERT_TRUE(m.insert(k, -k));
    auto r = m.range_query(90, 95);
    ASSERT_EQ(r.size(), 5u);
    for (int i = 0; i < 5; ++i) {
        EXPECT_EQ(r[i].first, 90 + i);
        EXPECT_EQ(r[i].second, -(90 + i));
    }
    ASSERT_TRUE(m.erase(92));
    r = m.range_query(90, 95);
    ASSERT_EQ(r.size(), 4u);
    EXPECT_EQ(m.snapshot().size(), 99u);

    // Level 0 is membership truth: the stamped walk and the cursor-based
    // for_each_range must agree at quiescence.
    std::vector<int> via_for_each;
    m.for_each_range(90, 95, [&](int k, int) { via_for_each.push_back(k); });
    ASSERT_EQ(via_for_each.size(), r.size());

    auto rep = audit_skip(m);
    EXPECT_TRUE(rep.ok) << rep.error;
}

// ----------------------------------------------------------------------- bst

TYPED_TEST(RangeQuery, BstReviveAndSnapshot) {
    bst<TypeParam> t{256};
    for (int k : {8, 4, 12, 2, 6, 10, 14}) ASSERT_TRUE(t.insert(k));
    EXPECT_EQ(t.range_query(4, 11), (std::vector<int>{4, 6, 8, 10}));

    ASSERT_TRUE(t.erase(6));
    EXPECT_EQ(t.range_query(4, 11), (std::vector<int>{4, 8, 10}));

    // Revive = replace-cell: a fresh stamped cell takes the tombstone's
    // place; the snapshot must show the key again, exactly once.
    ASSERT_TRUE(t.insert(6));
    EXPECT_EQ(t.range_query(4, 11), (std::vector<int>{4, 6, 8, 10}));
    EXPECT_EQ(t.snapshot(), (std::vector<int>{2, 4, 6, 8, 10, 12, 14}));
    EXPECT_TRUE(t.validate_slow().empty());
}

TYPED_TEST(RangeQuery, BstSpliceHandsOffVictims) {
    bst<TypeParam> t{256};
    for (int k : {8, 4, 12, 2, 6}) ASSERT_TRUE(t.insert(k));
    ASSERT_TRUE(t.erase_splice(4));  // two-children physical removal
    EXPECT_EQ(t.snapshot(), (std::vector<int>{2, 6, 8, 12}));
    EXPECT_EQ(t.range_query(3, 9), (std::vector<int>{6, 8}));
    EXPECT_TRUE(t.validate_slow().empty());
}

// ------------------------------------------------------- concurrent snapshots

/// Mutators churn a key space while snapshot threads take range queries.
/// Every result must be sorted, duplicate-free, inside bounds, and every
/// key outside the churn set must appear in every snapshot (they are
/// never touched, so no linearization can exclude them).
template <typename Dict, typename RangeFn>
void churn_and_snapshot(Dict& dict, RangeFn&& range_of) {
    constexpr int kStable = 16;   // keys 1000.. always present
    constexpr int kChurn = 24;    // keys 0..23 inserted/erased
    const int rounds = lfll_test::scaled(300);
    for (int k = 0; k < kStable; ++k) ASSERT_TRUE(dict.insert(1000 + k, 1));

    std::atomic<bool> stop{false};
    std::vector<std::thread> mutators;
    for (int t = 0; t < 2; ++t) {
        mutators.emplace_back([&, t] {
            xorshift64 rng(0xC0FFEE + t);
            while (!stop.load(std::memory_order_acquire)) {
                const int k = static_cast<int>(rng.next_below(kChurn));
                if ((rng.next() & 1) != 0) {
                    dict.insert(k, k);
                } else {
                    dict.erase(k);
                }
            }
        });
    }
    for (int r = 0; r < rounds; ++r) {
        std::vector<int> keys = range_of(dict);
        EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
        EXPECT_TRUE(std::adjacent_find(keys.begin(), keys.end()) == keys.end())
            << "duplicate key in snapshot";
        std::set<int> got(keys.begin(), keys.end());
        for (int k = 0; k < kStable; ++k) {
            EXPECT_EQ(got.count(1000 + k), 1u) << "stable key missing";
        }
        for (int k : keys) {
            ASSERT_TRUE((k >= 0 && k < kChurn) || (k >= 1000 && k < 1000 + kStable));
        }
    }
    stop.store(true, std::memory_order_release);
    for (auto& th : mutators) th.join();
}

TYPED_TEST(RangeQuery, SortedMapConcurrentSnapshots) {
    flat_map<TypeParam> m{512};
    churn_and_snapshot(m, [](flat_map<TypeParam>& d) {
        std::vector<int> out;
        for (const auto& kv : d.snapshot()) out.push_back(kv.first);
        return out;
    });
    auto rep = audit_list(m.list());
    EXPECT_TRUE(rep.ok) << rep.error;
}

TYPED_TEST(RangeQuery, SkipListConcurrentSnapshots) {
    skip_map<TypeParam> m{1024, 5};
    churn_and_snapshot(m, [](skip_map<TypeParam>& d) {
        std::vector<int> out;
        for (const auto& kv : d.snapshot()) out.push_back(kv.first);
        return out;
    });
    auto rep = audit_skip(m);
    EXPECT_TRUE(rep.ok) << rep.error;
}

TYPED_TEST(RangeQuery, BstConcurrentSnapshots) {
    bst<TypeParam> t{2048};
    struct shim {
        bst<TypeParam>& t;
        bool insert(int k, int) { return t.insert(k); }
        bool erase(int k) { return t.erase(k); }
    } s{t};
    churn_and_snapshot(s, [&](shim&) { return t.snapshot(); });
}

TYPED_TEST(RangeQuery, SplitOrderedConcurrentSnapshotsAcrossResize) {
    // Tiny directory + churny mutators: the recorded snapshots overlap
    // live bucket splits (and, with the decay fix, shrinks).
    so_map<TypeParam> m(2, 64);
    churn_and_snapshot(m, [](so_map<TypeParam>& d) {
        std::vector<int> out;
        for (const auto& kv : d.snapshot()) out.push_back(kv.first);
        return out;
    });
}

}  // namespace
