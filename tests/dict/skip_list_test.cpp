// Skip list (§4.1): semantics, level subset/hint structure, descent via
// down pointers, and concurrent set semantics with per-level audits.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/skip_list.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;
using map_t = skip_list_map<int, int>;

audit_report audit_all(map_t& m) {
    std::vector<map_t::list_type*> lists;
    for (int i = 0; i < m.max_level(); ++i) lists.push_back(&m.level(i));
    return audit_shared(m.pool(), lists);
}

TEST(SkipList, InsertFindErase) {
    map_t m(256, 8);
    EXPECT_TRUE(m.insert(5, 50));
    EXPECT_TRUE(m.insert(1, 10));
    EXPECT_TRUE(m.insert(9, 90));
    EXPECT_EQ(m.find(5), 50);
    EXPECT_EQ(m.find(1), 10);
    EXPECT_EQ(m.find(9), 90);
    EXPECT_EQ(m.find(7), std::nullopt);
    EXPECT_TRUE(m.erase(5));
    EXPECT_FALSE(m.contains(5));
    EXPECT_FALSE(m.erase(5));
    EXPECT_EQ(m.size_slow(), 2u);
}

TEST(SkipList, DuplicateInsertRejected) {
    map_t m(64, 4);
    EXPECT_TRUE(m.insert(3, 1));
    EXPECT_FALSE(m.insert(3, 2));
    EXPECT_EQ(m.find(3), 1);
}

TEST(SkipList, BottomLevelIsSortedAndComplete) {
    map_t m(1024, 8);
    std::set<int> expect;
    xorshift64 rng(42);
    for (int i = 0; i < 300; ++i) {
        const int k = static_cast<int>(rng.next_below(1000));
        EXPECT_EQ(m.insert(k, k), expect.insert(k).second);
    }
    std::vector<int> keys;
    m.for_each([&](int k, int v) {
        EXPECT_EQ(k, v);
        keys.push_back(k);
    });
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys.size(), expect.size());
}

TEST(SkipList, UpperLevelsAreSubsetsAtQuiescence) {
    map_t m(1024, 8);
    for (int k = 0; k < 200; ++k) m.insert(k, k);
    // Collect keys per level; each level's key set must be a subset of the
    // level below (inserts go bottom-up and nothing was deleted).
    std::vector<std::set<int>> per_level(8);
    for (int lvl = 0; lvl < 8; ++lvl) {
        for (map_t::cursor c(m.level(lvl)); !c.at_end(); m.level(lvl).next(c)) {
            per_level[lvl].insert((*c).key);
        }
    }
    EXPECT_EQ(per_level[0].size(), 200u);
    for (int lvl = 1; lvl < 8; ++lvl) {
        for (int k : per_level[lvl]) {
            EXPECT_TRUE(per_level[lvl - 1].count(k)) << "level " << lvl << " key " << k;
        }
        EXPECT_LE(per_level[lvl].size(), per_level[lvl - 1].size());
    }
    // Geometric promotion: level 1 should hold roughly half of the keys.
    EXPECT_GT(per_level[1].size(), 50u);
    EXPECT_LT(per_level[1].size(), 150u);
}

TEST(SkipList, EraseStripsAllLevels) {
    map_t m(256, 6);
    for (int k = 0; k < 100; ++k) m.insert(k, k);
    for (int k = 0; k < 100; ++k) EXPECT_TRUE(m.erase(k));
    EXPECT_EQ(m.size_slow(), 0u);
    for (int lvl = 0; lvl < 6; ++lvl) {
        EXPECT_EQ(m.level(lvl).size_slow(), 0u) << "level " << lvl << " not empty";
    }
    auto r = audit_all(m);
    EXPECT_TRUE(r.ok) << r.error;
    // Every node back in the (shared) pool.
    EXPECT_EQ(m.pool().free_count() + 3u * 6u, m.pool().capacity())
        << "3 dummies per level remain; everything else must be free";
}

TEST(SkipList, ReinsertAfterErase) {
    map_t m(128, 6);
    for (int round = 0; round < 30; ++round) {
        ASSERT_TRUE(m.insert(7, round)) << "round " << round;
        ASSERT_EQ(m.find(7), round);
        ASSERT_TRUE(m.erase(7));
        ASSERT_FALSE(m.contains(7));
    }
}

TEST(SkipList, MixedChurnKeepsLevelsAuditable) {
    map_t m(1024, 6);
    xorshift64 rng(99);
    std::set<int> model;
    for (int i = 0; i < 2000; ++i) {
        const int k = static_cast<int>(rng.next_below(300));
        if (rng.next() % 2 == 0) {
            EXPECT_EQ(m.insert(k, k), model.insert(k).second) << "op " << i;
        } else {
            EXPECT_EQ(m.erase(k), model.erase(k) == 1) << "op " << i;
        }
    }
    EXPECT_EQ(m.size_slow(), model.size());
    auto r = audit_all(m);
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SkipList, ConcurrentSetSemantics) {
    map_t m(4096, 10);
    constexpr int kThreads = 6;
    constexpr int kKeys = 64;
    const int kOps = scaled(2500);
    std::vector<std::vector<long>> ins(kThreads, std::vector<long>(kKeys, 0));
    std::vector<std::vector<long>> del(kThreads, std::vector<long>(kKeys, 0));
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0xace + static_cast<std::uint64_t>(t) * 6151);
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kOps; ++i) {
                const int k = static_cast<int>(rng.next_below(kKeys));
                switch (rng.next() % 3) {
                    case 0:
                        if (m.insert(k, k + 5)) ins[t][k]++;
                        break;
                    case 1:
                        if (m.erase(k)) del[t][k]++;
                        break;
                    default: {
                        auto v = m.find(k);
                        if (v.has_value()) {
                            EXPECT_EQ(*v, k + 5);
                        }
                        break;
                    }
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();

    for (int k = 0; k < kKeys; ++k) {
        long balance = 0;
        for (int t = 0; t < kThreads; ++t) balance += ins[t][k] - del[t][k];
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(balance == 1, m.contains(k)) << "key " << k;
    }
    // Whole-structure audit: every level's shape, the shared pool's
    // accounting, and all cross-level down links. (Upper levels may hold
    // stale hint entries, which is fine — they are still well-formed
    // cells whose references all balance.)
    auto r = audit_all(m);
    EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
