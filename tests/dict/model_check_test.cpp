// Model checking: every dictionary implementation (the paper's four §4
// structures plus the baselines) is driven through long random operation
// sequences in lock-step with a std::set oracle. Any divergence in return
// value or membership is a bug, regardless of which structure it is in.
// Typed over the structure; each type runs several seeds.
#include <gtest/gtest.h>

#include <set>

#include "lfll/baseline/coarse_list.hpp"
#include "lfll/baseline/fine_list.hpp"
#include "lfll/baseline/harris_michael_list.hpp"
#include "lfll/baseline/universal_set.hpp"
#include "lfll/dict/bst.hpp"
#include "lfll/dict/hash_map.hpp"
#include "lfll/dict/skip_list.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;

// Uniform adapter: construct + insert/erase/contains on int keys.
template <typename M>
struct adapter;

template <>
struct adapter<sorted_list_map<int, int>> {
    sorted_list_map<int, int> m{512};
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<hash_map<int, int>> {
    hash_map<int, int> m{16, 8};
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<skip_list_map<int, int>> {
    skip_list_map<int, int> m{1024, 8};
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<bst_set<int>> {
    bst_set<int> m{1024};
    bool insert(int k) { return m.insert(k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<harris_michael_list<int, int>> {
    harris_michael_list<int, int> m;
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<universal_set<int, int>> {
    universal_set<int, int> m;
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<universal_list_set<int, int>> {
    universal_list_set<int, int> m;
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<coarse_list_map<int, int>> {
    coarse_list_map<int, int> m;
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <>
struct adapter<fine_list_map<int, int>> {
    fine_list_map<int, int> m;
    bool insert(int k) { return m.insert(k, k); }
    bool erase(int k) { return m.erase(k); }
    bool contains(int k) { return m.contains(k); }
};

template <typename M>
class ModelCheck : public ::testing::Test {};

using Structures =
    ::testing::Types<sorted_list_map<int, int>, hash_map<int, int>, skip_list_map<int, int>,
                     bst_set<int>, harris_michael_list<int, int>, universal_set<int, int>,
                     universal_list_set<int, int>, coarse_list_map<int, int>,
                     fine_list_map<int, int>>;
TYPED_TEST_SUITE(ModelCheck, Structures);

TYPED_TEST(ModelCheck, MatchesStdSetOracle) {
    for (std::uint64_t seed : {11ULL, 22ULL, 33ULL}) {
        adapter<TypeParam> dut;
        std::set<int> oracle;
        xorshift64 rng(seed);
        for (int i = 0; i < 3000; ++i) {
            const int k = static_cast<int>(rng.next_below(64));
            switch (rng.next() % 3) {
                case 0:
                    ASSERT_EQ(dut.insert(k), oracle.insert(k).second)
                        << "seed " << seed << " op " << i << " insert(" << k << ")";
                    break;
                case 1:
                    ASSERT_EQ(dut.erase(k), oracle.erase(k) == 1)
                        << "seed " << seed << " op " << i << " erase(" << k << ")";
                    break;
                default:
                    ASSERT_EQ(dut.contains(k), oracle.count(k) == 1)
                        << "seed " << seed << " op " << i << " contains(" << k << ")";
                    break;
            }
        }
        // Final sweep: total membership agreement.
        for (int k = 0; k < 64; ++k) {
            ASSERT_EQ(dut.contains(k), oracle.count(k) == 1) << "seed " << seed << " final " << k;
        }
    }
}

TYPED_TEST(ModelCheck, AdversarialPatterns) {
    adapter<TypeParam> dut;
    std::set<int> oracle;
    auto step_insert = [&](int k) { ASSERT_EQ(dut.insert(k), oracle.insert(k).second) << k; };
    auto step_erase = [&](int k) { ASSERT_EQ(dut.erase(k), oracle.erase(k) == 1) << k; };
    // Ascending fill, descending drain.
    for (int k = 0; k < 40; ++k) step_insert(k);
    for (int k = 39; k >= 0; --k) step_erase(k);
    // Descending fill (worst case for the BST), ascending drain.
    for (int k = 40; k > 0; --k) step_insert(k);
    for (int k = 1; k <= 40; ++k) step_erase(k);
    // Alternating churn on one key.
    for (int i = 0; i < 50; ++i) {
        step_insert(7);
        step_erase(7);
    }
    // Boundary keys.
    step_insert(0);
    step_insert(1 << 30);
    ASSERT_TRUE(dut.contains(0));
    ASSERT_TRUE(dut.contains(1 << 30));
    for (int k : {0, 1 << 30}) step_erase(k);
    ASSERT_FALSE(dut.contains(0));
}

}  // namespace
