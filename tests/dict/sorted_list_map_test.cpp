// Sorted-list dictionary (Figs. 11-13): sequential semantics, ordering,
// uniqueness, and FindFrom cursor positioning.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/sorted_list_map.hpp"

namespace {

using namespace lfll;

TEST(SortedListMap, InsertFindErase) {
    sorted_list_map<int, std::string> m(64);
    EXPECT_TRUE(m.insert(2, "two"));
    EXPECT_TRUE(m.insert(1, "one"));
    EXPECT_TRUE(m.insert(3, "three"));
    EXPECT_EQ(m.find(1), "one");
    EXPECT_EQ(m.find(2), "two");
    EXPECT_EQ(m.find(3), "three");
    EXPECT_EQ(m.find(4), std::nullopt);
    EXPECT_TRUE(m.erase(2));
    EXPECT_EQ(m.find(2), std::nullopt);
    EXPECT_FALSE(m.erase(2));
}

TEST(SortedListMap, DuplicateInsertRejected) {
    sorted_list_map<int, int> m(16);
    EXPECT_TRUE(m.insert(5, 50));
    EXPECT_FALSE(m.insert(5, 51));
    EXPECT_EQ(m.find(5), 50);  // original value untouched
    EXPECT_EQ(m.size_slow(), 1u);
}

TEST(SortedListMap, KeysKeptSorted) {
    sorted_list_map<int, int> m(64);
    for (int k : {9, 3, 7, 1, 5, 8, 2, 6, 4, 0}) m.insert(k, k);
    std::vector<int> keys;
    m.for_each([&](int k, int) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SortedListMap, EraseFromEmptyFails) {
    sorted_list_map<int, int> m(16);
    EXPECT_FALSE(m.erase(1));
}

TEST(SortedListMap, FindFromPositionsAtInsertionPoint) {
    sorted_list_map<int, int> m(16);
    m.insert(10, 0);
    m.insert(30, 0);
    sorted_list_map<int, int>::cursor c(m.list());
    EXPECT_FALSE(m.find_from(20, c));
    ASSERT_FALSE(c.at_end());
    EXPECT_EQ((*c).first, 30);  // first key greater than 20
    EXPECT_TRUE(m.find_from(30, c));
    EXPECT_FALSE(m.find_from(40, c));
    EXPECT_TRUE(c.at_end());
}

TEST(SortedListMap, CustomComparatorReversesOrder) {
    sorted_list_map<int, int, std::greater<int>> m(16);
    for (int k : {1, 3, 2}) m.insert(k, k);
    std::vector<int> keys;
    m.for_each([&](int k, int) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<int>{3, 2, 1}));
    EXPECT_TRUE(m.contains(2));
    EXPECT_TRUE(m.erase(3));
    EXPECT_FALSE(m.contains(3));
}

TEST(SortedListMap, StringKeys) {
    sorted_list_map<std::string, int> m(16);
    EXPECT_TRUE(m.insert("banana", 2));
    EXPECT_TRUE(m.insert("apple", 1));
    EXPECT_TRUE(m.insert("cherry", 3));
    std::vector<std::string> keys;
    m.for_each([&](const std::string& k, int) { keys.push_back(k); });
    EXPECT_EQ(keys, (std::vector<std::string>{"apple", "banana", "cherry"}));
}

TEST(SortedListMap, ValuesWithNontrivialDestructorsReclaimCleanly) {
    sorted_list_map<int, std::vector<int>> m(16);
    m.insert(1, std::vector<int>(100, 7));
    m.insert(2, std::vector<int>(100, 8));
    EXPECT_TRUE(m.erase(1));
    EXPECT_TRUE(m.erase(2));
    auto r = audit_list(m.list());
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SortedListMap, ManyKeysRoundTrip) {
    sorted_list_map<int, int> m(1024);
    for (int k = 0; k < 500; ++k) EXPECT_TRUE(m.insert(k, 2 * k));
    EXPECT_EQ(m.size_slow(), 500u);
    for (int k = 0; k < 500; ++k) EXPECT_EQ(m.find(k), 2 * k);
    for (int k = 0; k < 500; k += 2) EXPECT_TRUE(m.erase(k));
    EXPECT_EQ(m.size_slow(), 250u);
    for (int k = 0; k < 500; ++k) EXPECT_EQ(m.contains(k), k % 2 == 1);
    auto r = audit_list(m.list());
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SortedListMap, ReinsertAfterEraseReusesPoolNodes) {
    sorted_list_map<int, int> m(8);
    for (int round = 0; round < 50; ++round) {
        ASSERT_TRUE(m.insert(1, round));
        ASSERT_TRUE(m.erase(1));
    }
    // 50 insert/erase rounds with a pool of 8: reuse is mandatory.
    EXPECT_LE(m.list().pool().capacity(), 64u);
    auto r = audit_list(m.list());
    EXPECT_TRUE(r.ok) << r.error;
}

}  // namespace
