// Sorted map, second pass: range scans, clear(), scan-path find details,
// and statistical sanity of the skip list's tower heights.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/hash_map.hpp"
#include "lfll/dict/skip_list.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;

TEST(SortedMapRange, ScansExactWindow) {
    sorted_list_map<int, int> m(256);
    for (int k = 0; k < 50; ++k) m.insert(k, k * 10);
    std::vector<int> keys;
    m.for_each_range(10, 20, [&](int k, int v) {
        EXPECT_EQ(v, k * 10);
        keys.push_back(k);
    });
    ASSERT_EQ(keys.size(), 10u);
    EXPECT_EQ(keys.front(), 10);
    EXPECT_EQ(keys.back(), 19);
}

TEST(SortedMapRange, EmptyAndDegenerateWindows) {
    sorted_list_map<int, int> m(64);
    for (int k : {5, 10, 15}) m.insert(k, k);
    int n = 0;
    m.for_each_range(6, 10, [&](int, int) { ++n; });
    EXPECT_EQ(n, 0);
    m.for_each_range(20, 30, [&](int, int) { ++n; });
    EXPECT_EQ(n, 0);
    m.for_each_range(10, 10, [&](int, int) { ++n; });  // empty window
    EXPECT_EQ(n, 0);
    m.for_each_range(5, 16, [&](int, int) { ++n; });
    EXPECT_EQ(n, 3);
}

TEST(SortedMapClear, EmptiesAndAudits) {
    sorted_list_map<int, int> m(256);
    for (int k = 0; k < 100; ++k) m.insert(k, k);
    EXPECT_EQ(m.clear(), 100u);
    EXPECT_EQ(m.size_slow(), 0u);
    EXPECT_EQ(m.clear(), 0u);
    auto r = audit_list(m.list());
    EXPECT_TRUE(r.ok) << r.error;
    // Reusable afterwards.
    EXPECT_TRUE(m.insert(7, 7));
    EXPECT_TRUE(m.contains(7));
}

TEST(SortedMapClear, ConcurrentClearersAccountExactly) {
    sorted_list_map<int, int> m(2048);
    constexpr int kN = 1000;
    for (int k = 0; k < kN; ++k) m.insert(k, k);
    std::atomic<std::size_t> total{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&] { total.fetch_add(m.clear()); });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(total.load(), static_cast<std::size_t>(kN));  // each cell deleted once
    EXPECT_EQ(m.size_slow(), 0u);
    auto r = audit_list(m.list());
    EXPECT_TRUE(r.ok) << r.error;
}

TEST(SkipListStats, TowerHeightsAreRoughlyGeometric) {
    skip_list_map<int, int> m(1 << 15, 12);
    constexpr int kN = 8000;
    for (int k = 0; k < kN; ++k) m.insert(k, k);
    // Level occupancy must decay roughly by half per level. Loose bands:
    // a broken random_level (always 1, or always max) fails these.
    std::vector<std::size_t> level_sizes;
    for (int lvl = 0; lvl < 6; ++lvl) level_sizes.push_back(m.level(lvl).size_slow());
    EXPECT_EQ(level_sizes[0], static_cast<std::size_t>(kN));
    for (int lvl = 1; lvl < 6; ++lvl) {
        const double ratio = static_cast<double>(level_sizes[lvl]) /
                             static_cast<double>(level_sizes[lvl - 1]);
        EXPECT_GT(ratio, 0.35) << "level " << lvl << " too sparse";
        EXPECT_LT(ratio, 0.65) << "level " << lvl << " too dense";
    }
}

TEST(HashMapConcurrent, ForEachDuringChurnSeesOnlyValidEntries) {
    hash_map<int, int> m(16, 16);
    for (int k = 0; k < 200; k += 2) m.insert(k, k * 7);
    std::atomic<bool> stop{false};
    std::atomic<int> bad{0};
    std::thread churner([&] {
        xorshift64 rng(1);
        while (!stop.load(std::memory_order_acquire)) {
            const int k = static_cast<int>(rng.next_below(200));
            if (rng.next() % 2 == 0) {
                m.insert(k, k * 7);
            } else {
                m.erase(k);
            }
        }
    });
    for (int i = 0; i < 200; ++i) {
        m.for_each([&](int k, int v) {
            if (v != k * 7) bad.fetch_add(1);
        });
    }
    stop.store(true, std::memory_order_release);
    churner.join();
    EXPECT_EQ(bad.load(), 0);
}

}  // namespace
