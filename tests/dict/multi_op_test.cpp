// Batched multi-op coverage (dict/batch.hpp + the maps' apply_batch)
// across all three reclamation policies:
//
//   * semantics on one thread: results come back in INPUT order, same-key
//     sub-ops resolve in submission order (stable sort), duplicate
//     inserts inside one batch fail exactly like per-call duplicates,
//     and a batched erase-then-erase of the same key fails the second op;
//   * multi_get equivalence under churn: concurrent mutators recycle the
//     odd keys while readers issue batched gets — every STABLE key must
//     come back present with its canonical value, every churned key must
//     be either absent or carry a value the mutators actually wrote
//     (exactly the guarantee serial find() gives per key);
//   * §5 count audits after batched storms: apply_batch mixes racing
//     each other on overlapping key ranges must leave the list with
//     clean reference counts — including on the split-ordered map while
//     its directory resizes under the batch passes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/sharded_kv.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/dict/split_ordered_map.hpp"
#include "lfll/primitives/rng.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"

namespace {

using namespace lfll;

template <typename Policy>
class MultiOpTest : public ::testing::Test {};

using Policies = ::testing::Types<valois_refcount, hazard_policy, epoch_policy>;
TYPED_TEST_SUITE(MultiOpTest, Policies);

template <typename Map>
void quiesce_and_expect_clean_audit(Map& map) {
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    const audit_report r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
}

template <typename Map>
void quiesce_and_expect_clean_so_audit(Map& map) {
    map.list().pool().flush_deferred_releases();
    map.list().pool().drain_retired();
    std::map<const typename Map::node*, std::size_t> external;
    map.for_each_bucket_slot(
        [&](std::size_t, typename Map::node* d) { external[d] += 1; });
    const audit_report r = audit_list(map.list(), external);
    EXPECT_TRUE(r.ok) << r.error;
}

TYPED_TEST(MultiOpTest, ResultsComeBackInInputOrder) {
    sorted_list_map<int, int, std::less<int>, TypeParam> m(256);
    // Deliberately unsorted, with a duplicate key: output must be
    // positional regardless of the internal sorted pass.
    const std::vector<std::pair<int, int>> kvs = {
        {7, 70}, {1, 10}, {9, 90}, {1, 11}, {4, 40}};
    const std::vector<bool> ins = m.multi_insert(kvs);
    ASSERT_EQ(ins.size(), 5u);
    EXPECT_TRUE(ins[0]);
    EXPECT_TRUE(ins[1]);
    EXPECT_TRUE(ins[2]);
    EXPECT_FALSE(ins[3]) << "second insert of key 1 in the SAME batch must "
                            "observe the first (submission order)";
    EXPECT_TRUE(ins[4]);
    EXPECT_EQ(m.size_slow(), 4u);
    EXPECT_EQ(m.find(1), std::optional<int>(10));

    const std::vector<int> keys = {9, 2, 1, 9, 7};
    const auto got = m.multi_get(keys);
    ASSERT_EQ(got.size(), 5u);
    EXPECT_EQ(got[0], std::optional<int>(90));
    EXPECT_FALSE(got[1].has_value());
    EXPECT_EQ(got[2], std::optional<int>(10));
    EXPECT_EQ(got[3], std::optional<int>(90));
    EXPECT_EQ(got[4], std::optional<int>(70));

    const std::vector<int> dels = {1, 5, 1, 4};
    const std::vector<bool> del = m.multi_erase(dels);
    ASSERT_EQ(del.size(), 4u);
    EXPECT_TRUE(del[0]);
    EXPECT_FALSE(del[1]);
    EXPECT_FALSE(del[2]) << "second erase of key 1 in the SAME batch must "
                            "observe the first";
    EXPECT_TRUE(del[3]);
    EXPECT_EQ(m.size_slow(), 2u);
    quiesce_and_expect_clean_audit(m);
}

TYPED_TEST(MultiOpTest, MixedBatchMatchesSerialReplay) {
    // One mixed apply_batch against a serial replay of the same ops on a
    // std::map oracle: identical outcomes op by op.
    sorted_list_map<int, int, std::less<int>, TypeParam> m(512);
    std::map<int, int> oracle;
    for (int k = 0; k < 16; k += 2) {
        m.insert(k, 1000 + k);
        oracle[k] = 1000 + k;
    }
    std::vector<batch_op<int, int>> ops;
    xorshift64 rng(0xBEEF);
    for (int i = 0; i < 64; ++i) {
        const int k = static_cast<int>(rng.next_below(24));
        switch (rng.next_below(3)) {
            case 0: ops.push_back({batch_op_kind::get, k, 0}); break;
            case 1: ops.push_back({batch_op_kind::insert, k, 2000 + i}); break;
            default: ops.push_back({batch_op_kind::erase, k, 0}); break;
        }
    }
    std::vector<batch_result<int>> out(ops.size());
    m.apply_batch(ops.data(), ops.size(), out.data());
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto it = oracle.find(ops[i].key);
        switch (ops[i].kind) {
            case batch_op_kind::get:
                EXPECT_EQ(out[i].ok, it != oracle.end()) << "op " << i;
                if (it != oracle.end()) {
                    EXPECT_EQ(out[i].value, std::optional<int>(it->second));
                }
                break;
            case batch_op_kind::insert:
                EXPECT_EQ(out[i].ok, it == oracle.end()) << "op " << i;
                if (it == oracle.end()) oracle[ops[i].key] = ops[i].value;
                break;
            case batch_op_kind::erase:
                EXPECT_EQ(out[i].ok, it != oracle.end()) << "op " << i;
                if (it != oracle.end()) oracle.erase(it);
                break;
        }
    }
    EXPECT_EQ(m.size_slow(), oracle.size());
    for (const auto& [k, v] : oracle) EXPECT_EQ(m.find(k), std::optional<int>(v));
    quiesce_and_expect_clean_audit(m);
}

TYPED_TEST(MultiOpTest, MultiGetEquivalenceUnderChurn) {
    // Even keys are stable; odd keys are recycled by two mutators with
    // canonical values (key + 5000). Batched gets must behave exactly
    // like serial finds: stable keys always present with their value,
    // churned keys absent or canonical.
    constexpr int kRange = 512;
    sorted_list_map<int, int, std::less<int>, TypeParam> m(2 * kRange + 64);
    for (int k = 0; k < kRange; k += 2) m.insert(k, 4000 + k);

    std::atomic<bool> stop{false};
    std::vector<std::thread> mutators;
    for (int t = 0; t < 2; ++t) {
        mutators.emplace_back([&m, t, &stop] {
            xorshift64 rng(0x0DD5EED + t);
            while (!stop.load(std::memory_order_relaxed)) {
                const int k =
                    static_cast<int>(rng.next_below(kRange / 2)) * 2 + 1;
                if (rng.next_below(2) == 0) {
                    m.insert(k, 5000 + k);
                } else {
                    m.erase(k);
                }
            }
        });
    }
    for (int round = 0; round < 400; ++round) {
        std::vector<int> keys;
        xorshift64 rng(0x6E7 + round);
        for (int i = 0; i < 24; ++i) {
            keys.push_back(static_cast<int>(rng.next_below(kRange)));
        }
        const auto got = m.multi_get(keys);
        ASSERT_EQ(got.size(), keys.size());
        for (std::size_t i = 0; i < keys.size(); ++i) {
            const int k = keys[i];
            if (k % 2 == 0) {
                ASSERT_TRUE(got[i].has_value()) << "stable key " << k << " lost";
                EXPECT_EQ(*got[i], 4000 + k);
            } else if (got[i].has_value()) {
                EXPECT_EQ(*got[i], 5000 + k);
            }
        }
    }
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : mutators) t.join();
    quiesce_and_expect_clean_audit(m);
}

TYPED_TEST(MultiOpTest, SortedBatchStormAuditsClean) {
    // Four threads race mixed apply_batch calls over one overlapping key
    // range; afterwards every surviving value must be canonical and the
    // §5 reference-count audit must hold.
    constexpr int kRange = 256;
    sorted_list_map<int, int, std::less<int>, TypeParam> m(2 * kRange + 64);
    std::vector<std::thread> storms;
    for (int t = 0; t < 4; ++t) {
        storms.emplace_back([&m, t] {
            xorshift64 rng(0x570B3 + t * 131);
            std::vector<batch_op<int, int>> ops(16);
            std::vector<batch_result<int>> out(16);
            for (int round = 0; round < 300; ++round) {
                for (auto& op : ops) {
                    const int k = static_cast<int>(rng.next_below(kRange));
                    const auto pick = rng.next_below(3);
                    op.key = k;
                    op.value = 7000 + k;
                    op.kind = pick == 0   ? batch_op_kind::get
                              : pick == 1 ? batch_op_kind::insert
                                          : batch_op_kind::erase;
                }
                m.apply_batch(ops.data(), ops.size(), out.data());
            }
        });
    }
    for (auto& t : storms) t.join();
    std::size_t live = 0;
    m.for_each([&](const int& k, const int& v) {
        ++live;
        EXPECT_EQ(v, 7000 + k);
    });
    EXPECT_EQ(m.size_slow(), live);
    quiesce_and_expect_clean_audit(m);
}

TYPED_TEST(MultiOpTest, SplitOrderedBatchStormWithLiveResize) {
    // Same storm shape on the split-ordered map, sized so the batches
    // themselves drive directory growth AND decay shrink mid-storm: the
    // per-sub-op resize ticks must survive the batched path.
    using map_t = split_ordered_map<int, int, std::hash<int>, std::less<int>,
                                    TypeParam>;
    typename map_t::config cfg;
    cfg.initial_buckets = 2;
    cfg.capacity_hint = 2048;
    cfg.max_load = 1.0;
    cfg.min_load = 0.25;
    cfg.resize_check_period = 4;
    map_t m(cfg);
    constexpr int kRange = 512;
    std::vector<std::thread> storms;
    for (int t = 0; t < 4; ++t) {
        storms.emplace_back([&m, t] {
            xorshift64 rng(0x50A11 + t * 977);
            std::vector<batch_op<int, int>> ops(16);
            std::vector<batch_result<int>> out(16);
            for (int round = 0; round < 250; ++round) {
                // Alternate insert-heavy and erase-heavy phases so the
                // directory grows and decays repeatedly under the storm.
                const bool filling = (round / 25) % 2 == 0;
                for (auto& op : ops) {
                    const int k = static_cast<int>(rng.next_below(kRange));
                    const auto pick = rng.next_below(4);
                    op.key = k;
                    op.value = 9000 + k;
                    if (pick == 0) {
                        op.kind = batch_op_kind::get;
                    } else if (filling) {
                        op.kind = pick == 1 ? batch_op_kind::erase
                                            : batch_op_kind::insert;
                    } else {
                        op.kind = pick == 1 ? batch_op_kind::insert
                                            : batch_op_kind::erase;
                    }
                }
                m.apply_batch(ops.data(), ops.size(), out.data());
            }
        });
    }
    for (auto& t : storms) t.join();
    EXPECT_GE(m.grow_count(), 1u) << "storm never grew the directory";
    std::size_t live = 0;
    m.for_each([&](const int& k, const int& v) {
        ++live;
        EXPECT_EQ(v, 9000 + k);
    });
    EXPECT_EQ(m.size_slow(), live);
    quiesce_and_expect_clean_so_audit(m);
}

TYPED_TEST(MultiOpTest, ShardedBatchScattersAcrossShards) {
    using map_t = sorted_list_map<int, int, std::less<int>, TypeParam>;
    sharded_kv<map_t> store(4, [](std::size_t) {
        return std::make_unique<map_t>(512);
    });
    std::vector<std::pair<int, int>> kvs;
    for (int k = 0; k < 96; ++k) kvs.push_back({k, 3000 + k});
    const auto ins = store.multi_insert(kvs);
    for (std::size_t i = 0; i < ins.size(); ++i) EXPECT_TRUE(ins[i]) << i;
    EXPECT_EQ(store.size_slow(), 96u);
    // Keys land on several shards (top-bit routing of the mixed hash).
    std::size_t populated = 0;
    for (std::size_t s = 0; s < store.shard_count(); ++s) {
        populated += store.shard_at(s).size_slow() > 0 ? 1 : 0;
    }
    EXPECT_GE(populated, 2u);

    std::vector<int> keys;
    for (int k = 95; k >= 0; k -= 3) keys.push_back(k);
    const auto got = store.multi_get(keys);
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ASSERT_TRUE(got[i].has_value()) << keys[i];
        EXPECT_EQ(*got[i], 3000 + keys[i]);
    }
    std::vector<int> evens;
    for (int k = 0; k < 96; k += 2) evens.push_back(k);
    const auto del = store.multi_erase(evens);
    for (std::size_t i = 0; i < del.size(); ++i) EXPECT_TRUE(del[i]) << i;
    EXPECT_EQ(store.size_slow(), 48u);
}

}  // namespace
