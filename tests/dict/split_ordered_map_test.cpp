// Split-ordered resizable hash map: semantics, lazy splitting, resize
// under load, and the §5 counted-reference audit — typed over all three
// memory policies, since bucket dummies and shortcut references must
// stay sound under counting AND deferred reclamation.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lfll/core/audit.hpp"
#include "lfll/dict/hash_map.hpp"
#include "lfll/dict/sharded_kv.hpp"
#include "lfll/dict/split_ordered_map.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"
#include "test_scale.hpp"

namespace {

using namespace lfll;

template <typename P>
using so_map = split_ordered_map<int, int, std::hash<int>, std::less<int>, P>;

/// Audits the map's list with each bucket slot's reference accounted.
template <typename P>
void audit_map(so_map<P>& m) {
    std::map<const typename so_map<P>::node*, std::size_t> external;
    m.for_each_bucket_slot([&](std::size_t, typename so_map<P>::node* d) {
        external[d] += 1;
    });
    const audit_report r = audit_list(m.list(), external);
    EXPECT_TRUE(r.ok) << r.error;
}

template <typename P>
struct SplitOrderedMap : ::testing::Test {};

using Policies = ::testing::Types<valois_refcount, hazard_policy, epoch_policy>;
TYPED_TEST_SUITE(SplitOrderedMap, Policies);

TYPED_TEST(SplitOrderedMap, InsertFindErase) {
    so_map<TypeParam> m(8, 32);
    EXPECT_TRUE(m.insert(1, 10));
    EXPECT_TRUE(m.insert(2, 20));
    EXPECT_FALSE(m.insert(1, 99));  // duplicate rejected
    EXPECT_EQ(m.find(1), 10);
    EXPECT_EQ(m.find(2), 20);
    EXPECT_EQ(m.find(3), std::nullopt);
    EXPECT_TRUE(m.erase(1));
    EXPECT_FALSE(m.erase(1));
    EXPECT_EQ(m.find(1), std::nullopt);
    EXPECT_EQ(m.size_slow(), 1u);
    audit_map(m);
}

TYPED_TEST(SplitOrderedMap, GrowsUnderInsertLoad) {
    split_ordered_config cfg;
    cfg.initial_buckets = 2;
    cfg.max_load = 2.0;
    cfg.resize_check_period = 1;  // deterministic: check every update
    so_map<TypeParam> m(cfg);
    const int n = 1000;
    for (int k = 0; k < n; ++k) EXPECT_TRUE(m.insert(k, k));
    // 1000 entries at max_load 2.0 needs >= 512 buckets: 8 doublings
    // from 2, comfortably past the >= 8x acceptance bar.
    EXPECT_GE(m.bucket_count(), 512u);
    EXPECT_GE(m.grow_count(), 8u);
    EXPECT_EQ(m.size_slow(), static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) EXPECT_EQ(m.find(k), k) << k;
    audit_map(m);
}

TYPED_TEST(SplitOrderedMap, EntriesSurviveResizeWithoutMigration) {
    split_ordered_config cfg;
    cfg.initial_buckets = 2;
    cfg.max_load = 1.0;
    cfg.resize_check_period = 1;
    so_map<TypeParam> m(cfg);
    // Interleave inserts and lookups of everything inserted so far:
    // every grow happens with prior entries visible before AND after
    // (split-ordering never moves an entry, only adds dummies).
    for (int k = 0; k < 200; ++k) {
        EXPECT_TRUE(m.insert(k * 7, k));
        for (int j = 0; j <= k; j += 17) EXPECT_EQ(m.find(j * 7), j);
    }
    EXPECT_GT(m.grow_count(), 0u);
    audit_map(m);
}

TYPED_TEST(SplitOrderedMap, LazyBucketInitRecursesThroughParents) {
    split_ordered_config cfg;
    cfg.initial_buckets = 2;
    cfg.max_load = 1.0;
    cfg.resize_check_period = 1;
    so_map<TypeParam> m(cfg);
    for (int k = 0; k < 300; ++k) m.insert(k, k);
    // Dummies appear only on first touch, so strictly fewer than the
    // directory size got initialized, and never more than touched keys.
    EXPECT_GT(m.dummy_count(), 1u);
    EXPECT_LE(m.dummy_count(), m.bucket_count());
    // A cold bucket's first lookup initializes a chain of parents.
    EXPECT_EQ(m.find(1 << 20), std::nullopt);
    audit_map(m);
}

TYPED_TEST(SplitOrderedMap, ShrinkHalvesDirectoryAtLowLoad) {
    split_ordered_config cfg;
    cfg.initial_buckets = 4;
    cfg.max_load = 2.0;
    cfg.min_load = 0.25;
    cfg.resize_check_period = 1;
    so_map<TypeParam> m(cfg);
    for (int k = 0; k < 512; ++k) m.insert(k, k);
    const std::size_t grown = m.bucket_count();
    EXPECT_GE(grown, 256u);
    for (int k = 0; k < 512; ++k) m.erase(k);
    // Deletions drive the load under min_load; the directory halves
    // (stale dummies stay in the list — harmless by construction).
    EXPECT_GT(m.shrink_count(), 0u);
    EXPECT_LT(m.bucket_count(), grown);
    EXPECT_GE(m.bucket_count(), m.initial_bucket_count());
    EXPECT_EQ(m.size_slow(), 0u);
    audit_map(m);
}

TYPED_TEST(SplitOrderedMap, HashCollisionsAreDistinctEntries) {
    struct bad_hash {
        std::size_t operator()(int) const noexcept { return 42; }  // all collide
    };
    split_ordered_map<int, int, bad_hash, std::less<int>, TypeParam> m(8, 32);
    for (int k = 0; k < 50; ++k) EXPECT_TRUE(m.insert(k, k * 2));
    for (int k = 0; k < 50; ++k) EXPECT_EQ(m.find(k), k * 2);
    EXPECT_TRUE(m.erase(25));
    EXPECT_EQ(m.find(25), std::nullopt);
    EXPECT_EQ(m.find(24), 48);
    EXPECT_EQ(m.find(26), 52);
    EXPECT_EQ(m.size_slow(), 49u);
}

TYPED_TEST(SplitOrderedMap, ForEachSkipsDummiesAndSeesEverything) {
    split_ordered_config cfg;
    cfg.initial_buckets = 2;
    cfg.max_load = 1.0;
    cfg.resize_check_period = 1;
    so_map<TypeParam> m(cfg);
    for (int k = 0; k < 128; ++k) m.insert(k, k + 1);
    EXPECT_GT(m.dummy_count(), 2u);  // plenty of dummies in the list...
    std::set<int> seen;
    m.for_each([&](int k, int v) {
        EXPECT_EQ(v, k + 1);
        EXPECT_TRUE(seen.insert(k).second);
    });
    EXPECT_EQ(seen.size(), 128u);  // ...none of them visited
    const so_map<TypeParam>& cm = m;
    std::size_t n = 0;
    cm.for_each([&](int, int) { ++n; });
    EXPECT_EQ(n, 128u);
}

TYPED_TEST(SplitOrderedMap, ConcurrentMixedLoadWithResize) {
    split_ordered_config cfg;
    cfg.initial_buckets = 2;
    cfg.max_load = 2.0;
    cfg.resize_check_period = 1;
    so_map<TypeParam> m(cfg);
    const int threads = 4;
    const int per = lfll_test::scaled_min(1500, 200);
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < per; ++i) {
                const int k = t * per + i;
                EXPECT_TRUE(m.insert(k, k));
                if (i % 3 == 0) {
                    EXPECT_TRUE(m.erase(k));
                }
                if (i % 5 == 0) (void)m.find(k / 2);
            }
        });
    }
    for (auto& th : ts) th.join();
    std::size_t expect = 0;
    for (int t = 0; t < threads; ++t)
        for (int i = 0; i < per; ++i) expect += (i % 3 != 0);
    EXPECT_EQ(m.size_slow(), expect);
    EXPECT_EQ(static_cast<std::int64_t>(expect), m.size_approx());
    EXPECT_GE(m.grow_count(), 3u);
    m.pool().drain_retired();
    audit_map(m);
}

TYPED_TEST(SplitOrderedMap, ShardedStoreRoutesAndAggregates) {
    split_ordered_config cfg;
    cfg.initial_buckets = 4;
    auto store =
        make_sharded_kv<int, int, std::hash<int>, std::less<int>, TypeParam>(4, cfg);
    EXPECT_EQ(store.shard_count(), 4u);
    const int n = 500;
    for (int k = 0; k < n; ++k) EXPECT_TRUE(store.insert(k, k * 3));
    for (int k = 0; k < n; ++k) EXPECT_EQ(store.find(k), k * 3);
    EXPECT_EQ(store.size_slow(), static_cast<std::size_t>(n));
    // Every shard got a share (top-bit routing over a mixed hash).
    for (std::size_t s = 0; s < store.shard_count(); ++s) {
        EXPECT_GT(store.shard_at(s).size_slow(), 0u) << "shard " << s;
    }
    // Shard pools are genuinely distinct arenas.
    for (std::size_t s = 1; s < store.shard_count(); ++s) {
        EXPECT_NE(&store.shard_at(0).pool(), &store.shard_at(s).pool());
    }
    std::set<int> seen;
    store.for_each([&](int k, int) { seen.insert(k); });
    EXPECT_EQ(seen.size(), static_cast<std::size_t>(n));
}

// Non-typed odds and ends.

TEST(SplitOrderedMapMisc, StringValuesAndKvMapAlias) {
    kv_map<int, std::string> m(4, 16);
    EXPECT_TRUE(m.insert(7, "seven"));
    EXPECT_EQ(m.find(7), "seven");
    EXPECT_TRUE(m.erase(7));
    EXPECT_FALSE(m.contains(7));
}

TEST(SplitOrderedMapMisc, BitReversalRoundTripsAndOrders) {
    using so_detail::bit_reverse;
    EXPECT_EQ(bit_reverse(bit_reverse(0xdeadbeefcafef00dULL)), 0xdeadbeefcafef00dULL);
    EXPECT_EQ(bit_reverse(0ULL), 0ULL);
    EXPECT_EQ(bit_reverse(1ULL), 1ULL << 63);
    // Bucket 0's dummy precedes bucket 1's, which precedes any entry
    // hashed into bucket 1 (low bit set after reversal).
    EXPECT_LT(so_detail::so_dummy(0), so_detail::so_dummy(1));
    EXPECT_LT(so_detail::so_dummy(1), so_detail::so_regular(1));
}

TEST(SplitOrderedMapMisc, ParentBucketClearsTopBit) {
    EXPECT_EQ(so_detail::parent_bucket(1), 0u);
    EXPECT_EQ(so_detail::parent_bucket(5), 1u);
    EXPECT_EQ(so_detail::parent_bucket(12), 4u);
    EXPECT_EQ(so_detail::parent_bucket(0x80000001ULL), 1u);
}

TEST(SplitOrderedMapMisc, DirectoryCapStopsGrowth) {
    split_ordered_config cfg;
    cfg.initial_buckets = 2;
    cfg.max_load = 0.5;
    cfg.max_buckets = 16;
    cfg.resize_check_period = 1;
    split_ordered_map<int, int> m(cfg);
    for (int k = 0; k < 400; ++k) m.insert(k, k);
    EXPECT_EQ(m.bucket_count(), 16u);  // capped, still correct
    for (int k = 0; k < 400; ++k) EXPECT_EQ(m.find(k), k);
}

}  // namespace
