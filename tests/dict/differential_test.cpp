// Differential testing: all five lock-free dictionaries consume the SAME
// operation stream and must produce byte-identical result streams —
// membership answers, return codes, and final contents. Any divergence
// localizes a bug to one structure without needing an oracle at all
// (though the model_check suite provides one anyway).
#include <gtest/gtest.h>

#include <vector>

#include "lfll/baseline/harris_michael_list.hpp"
#include "lfll/dict/bst.hpp"
#include "lfll/dict/hash_map.hpp"
#include "lfll/dict/skip_list.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;

struct op {
    enum kind { insert, erase, contains } k;
    int key;
};

std::vector<op> make_stream(std::uint64_t seed, int n, int key_range) {
    xorshift64 rng(seed);
    std::vector<op> ops;
    ops.reserve(n);
    for (int i = 0; i < n; ++i) {
        ops.push_back({static_cast<op::kind>(rng.next() % 3),
                       static_cast<int>(rng.next_below(key_range))});
    }
    return ops;
}

/// Runs the stream and records every boolean result.
template <typename Insert, typename Erase, typename Contains>
std::vector<bool> run_stream(const std::vector<op>& ops, Insert&& ins, Erase&& ers,
                             Contains&& has) {
    std::vector<bool> results;
    results.reserve(ops.size());
    for (const op& o : ops) {
        switch (o.k) {
            case op::insert:
                results.push_back(ins(o.key));
                break;
            case op::erase:
                results.push_back(ers(o.key));
                break;
            case op::contains:
                results.push_back(has(o.key));
                break;
        }
    }
    return results;
}

TEST(Differential, AllDictionariesAgreeOnEveryResult) {
    for (std::uint64_t seed : {3ULL, 1447ULL, 99991ULL}) {
        const auto ops = make_stream(seed, 4000, 96);

        sorted_list_map<int, int> flat(512);
        auto r_flat = run_stream(
            ops, [&](int k) { return flat.insert(k, k); },
            [&](int k) { return flat.erase(k); }, [&](int k) { return flat.contains(k); });

        hash_map<int, int> hash(8, 16);
        auto r_hash = run_stream(
            ops, [&](int k) { return hash.insert(k, k); },
            [&](int k) { return hash.erase(k); }, [&](int k) { return hash.contains(k); });

        skip_list_map<int, int> skip(1024, 8);
        auto r_skip = run_stream(
            ops, [&](int k) { return skip.insert(k, k); },
            [&](int k) { return skip.erase(k); }, [&](int k) { return skip.contains(k); });

        bst_set<int> tree(1024);
        auto r_tree = run_stream(
            ops, [&](int k) { return tree.insert(k); }, [&](int k) { return tree.erase(k); },
            [&](int k) { return tree.contains(k); });

        harris_michael_list<int, int> hm;
        auto r_hm = run_stream(
            ops, [&](int k) { return hm.insert(k, k); }, [&](int k) { return hm.erase(k); },
            [&](int k) { return hm.contains(k); });

        for (std::size_t i = 0; i < ops.size(); ++i) {
            ASSERT_EQ(r_flat[i], r_hash[i]) << "seed " << seed << " op " << i;
            ASSERT_EQ(r_flat[i], r_skip[i]) << "seed " << seed << " op " << i;
            ASSERT_EQ(r_flat[i], r_tree[i]) << "seed " << seed << " op " << i;
            ASSERT_EQ(r_flat[i], r_hm[i]) << "seed " << seed << " op " << i;
        }

        // Final contents agree too (ordered walks for the ordered ones).
        std::vector<int> flat_keys, skip_keys, tree_keys;
        flat.for_each([&](int k, int) { flat_keys.push_back(k); });
        skip.for_each([&](int k, int) { skip_keys.push_back(k); });
        tree.for_each([&](int k) { tree_keys.push_back(k); });
        EXPECT_EQ(flat_keys, skip_keys) << "seed " << seed;
        EXPECT_EQ(flat_keys, tree_keys) << "seed " << seed;
        EXPECT_EQ(flat.size_slow(), hash.size_slow()) << "seed " << seed;
        EXPECT_EQ(flat.size_slow(), hm.size_slow()) << "seed " << seed;
    }
}

TEST(Differential, OrderedStructuresAgreeOnRangeScans) {
    const auto ops = make_stream(0xabcdULL, 2000, 200);
    sorted_list_map<int, int> flat(512);
    skip_list_map<int, int> skip(1024, 8);
    for (const op& o : ops) {
        if (o.k == op::insert) {
            flat.insert(o.key, o.key * 2);
            skip.insert(o.key, o.key * 2);
        } else if (o.k == op::erase) {
            flat.erase(o.key);
            skip.erase(o.key);
        }
    }
    for (int lo = 0; lo < 200; lo += 37) {
        const int hi = lo + 50;
        std::vector<int> from_flat, from_skip;
        flat.for_each([&](int k, int) {
            if (k >= lo && k < hi) from_flat.push_back(k);
        });
        skip.for_each_range(lo, hi, [&](int k, int v) {
            EXPECT_EQ(v, k * 2);
            from_skip.push_back(k);
        });
        EXPECT_EQ(from_flat, from_skip) << "window [" << lo << ", " << hi << ")";
    }
}

}  // namespace
