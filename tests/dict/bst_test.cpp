// Auxiliary-node BST (§4.2): find/insert semantics, tombstone deletion
// with revival, the Fig. 14 splice deletions (0/1/2-child cases), and
// concurrent set semantics under the tombstone policy.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "lfll/dict/bst.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;
using set_t = bst_set<int>;

TEST(Bst, InsertContains) {
    set_t s(64);
    EXPECT_TRUE(s.insert(5));
    EXPECT_TRUE(s.insert(3));
    EXPECT_TRUE(s.insert(8));
    EXPECT_TRUE(s.contains(5));
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(8));
    EXPECT_FALSE(s.contains(4));
    EXPECT_EQ(s.size_slow(), 3u);
    EXPECT_EQ(s.validate_slow(), "");
}

TEST(Bst, DuplicateInsertRejected) {
    set_t s(16);
    EXPECT_TRUE(s.insert(1));
    EXPECT_FALSE(s.insert(1));
    EXPECT_EQ(s.size_slow(), 1u);
}

TEST(Bst, InOrderTraversalIsSorted) {
    set_t s(256);
    xorshift64 rng(7);
    std::set<int> model;
    for (int i = 0; i < 200; ++i) {
        const int k = static_cast<int>(rng.next_below(1000));
        EXPECT_EQ(s.insert(k), model.insert(k).second);
    }
    std::vector<int> keys;
    s.for_each([&](int k) { keys.push_back(k); });
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    EXPECT_EQ(keys.size(), model.size());
    EXPECT_EQ(s.validate_slow(), "");
}

TEST(Bst, TombstoneEraseAndRevive) {
    set_t s(16);
    EXPECT_TRUE(s.insert(4));
    EXPECT_TRUE(s.erase(4));
    EXPECT_FALSE(s.contains(4));
    EXPECT_FALSE(s.erase(4));      // already dead
    EXPECT_TRUE(s.insert(4));      // revives the tombstone
    EXPECT_TRUE(s.contains(4));
    EXPECT_EQ(s.size_slow(), 1u);
    EXPECT_EQ(s.validate_slow(), "");
}

TEST(Bst, EraseAbsentFails) {
    set_t s(16);
    s.insert(1);
    EXPECT_FALSE(s.erase(2));
}

TEST(Bst, SpliceEraseLeaf) {
    set_t s(32);
    for (int k : {5, 3, 8}) s.insert(k);
    EXPECT_TRUE(s.erase_splice(3));  // leaf: both children empty
    EXPECT_FALSE(s.contains(3));
    EXPECT_TRUE(s.contains(5));
    EXPECT_TRUE(s.contains(8));
    EXPECT_EQ(s.validate_slow(), "");
    EXPECT_EQ(s.size_slow(), 2u);
}

TEST(Bst, SpliceEraseOneChildLeft) {
    set_t s(32);
    for (int k : {5, 3, 2}) s.insert(k);  // 3 has only a left child (2)
    EXPECT_TRUE(s.erase_splice(3));
    EXPECT_FALSE(s.contains(3));
    EXPECT_TRUE(s.contains(2));
    EXPECT_TRUE(s.contains(5));
    EXPECT_EQ(s.validate_slow(), "");
}

TEST(Bst, SpliceEraseOneChildRight) {
    set_t s(32);
    for (int k : {5, 3, 4}) s.insert(k);  // 3 has only a right child (4)
    EXPECT_TRUE(s.erase_splice(3));
    EXPECT_FALSE(s.contains(3));
    EXPECT_TRUE(s.contains(4));
    EXPECT_TRUE(s.contains(5));
    EXPECT_EQ(s.validate_slow(), "");
}

TEST(Bst, SpliceEraseTwoChildrenFigure14) {
    // Figure 14's shape: F has two children; its in-order successor G is
    // the leftmost cell of F's right subtree.
    set_t s(64);
    for (int k : {40 /*F*/, 20, 60, 10, 30, 50 /*G*/, 70, 45, 55}) s.insert(k);
    EXPECT_TRUE(s.erase_splice(40));
    EXPECT_FALSE(s.contains(40));
    for (int k : {20, 60, 10, 30, 50, 70, 45, 55}) {
        EXPECT_TRUE(s.contains(k)) << "lost key " << k;
    }
    EXPECT_EQ(s.validate_slow(), "");
    EXPECT_EQ(s.size_slow(), 8u);
}

TEST(Bst, SpliceEraseRoot) {
    set_t s(32);
    for (int k : {5, 3, 8}) s.insert(k);
    EXPECT_TRUE(s.erase_splice(5));  // root with two children
    EXPECT_FALSE(s.contains(5));
    EXPECT_TRUE(s.contains(3));
    EXPECT_TRUE(s.contains(8));
    EXPECT_EQ(s.validate_slow(), "");
}

TEST(Bst, SpliceEraseAbsentFails) {
    set_t s(16);
    s.insert(1);
    EXPECT_FALSE(s.erase_splice(2));
}

TEST(Bst, SpliceEraseEverythingSequentially) {
    set_t s(256);
    xorshift64 rng(13);
    std::set<int> model;
    for (int i = 0; i < 100; ++i) {
        const int k = static_cast<int>(rng.next_below(500));
        if (s.insert(k)) model.insert(k);
    }
    // Delete in random order, revalidating the tree shape each time.
    std::vector<int> keys(model.begin(), model.end());
    for (std::size_t i = keys.size(); i > 1; --i) {
        std::swap(keys[i - 1], keys[rng.next_below(i)]);
    }
    for (int k : keys) {
        ASSERT_TRUE(s.erase_splice(k)) << "key " << k;
        ASSERT_EQ(s.validate_slow(), "") << "after deleting " << k;
    }
    EXPECT_EQ(s.size_slow(), 0u);
}

TEST(Bst, SpliceReclaimsNodes) {
    set_t s(64);
    const std::size_t free0 = s.pool().free_count();
    for (int k : {5, 3, 8}) s.insert(k);
    for (int k : {3, 8, 5}) ASSERT_TRUE(s.erase_splice(k));
    // Every cell + its two aux nodes must come back (shunt chains may pin
    // a bounded residue of aux nodes; with sequential deletes: none).
    // Traversal decrements may still be batched; flush them first.
    s.pool().flush_deferred_releases();
    EXPECT_EQ(s.pool().free_count(), free0);
}

TEST(Bst, ConcurrentTombstoneSetSemantics) {
    set_t s(4096);
    constexpr int kThreads = 6;
    constexpr int kKeys = 64;
    const int kOps = scaled(3000);
    std::vector<std::vector<long>> ins(kThreads, std::vector<long>(kKeys, 0));
    std::vector<std::vector<long>> del(kThreads, std::vector<long>(kKeys, 0));
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0xb57 + static_cast<std::uint64_t>(t) * 2027);
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kOps; ++i) {
                const int k = static_cast<int>(rng.next_below(kKeys));
                switch (rng.next() % 3) {
                    case 0:
                        if (s.insert(k)) ins[t][k]++;
                        break;
                    case 1:
                        if (s.erase(k)) del[t][k]++;
                        break;
                    default:
                        (void)s.contains(k);
                        break;
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();

    for (int k = 0; k < kKeys; ++k) {
        long balance = 0;
        for (int t = 0; t < kThreads; ++t) balance += ins[t][k] - del[t][k];
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(balance == 1, s.contains(k)) << "key " << k;
    }
    EXPECT_EQ(s.validate_slow(), "");
}

TEST(Bst, ConcurrentSearchesDuringSpliceDeletes) {
    // One splice-deleting thread (the documented restriction: a single
    // structural mutator), many searchers following the shunt chains.
    set_t s(2048);
    for (int k = 0; k < 400; ++k) s.insert(k);
    std::atomic<bool> stop{false};
    std::atomic<int> false_negatives{0};
    std::vector<std::thread> readers;
    for (int t = 0; t < 4; ++t) {
        readers.emplace_back([&, t] {
            xorshift64 rng(0x5eed + static_cast<std::uint64_t>(t));
            while (!stop.load(std::memory_order_acquire)) {
                const int k = static_cast<int>(rng.next_below(400));
                // Keys 200..399 are never deleted: must always be found.
                if (k >= 200 && !s.contains(k)) false_negatives++;
            }
        });
    }
    const int kDel = scaled(200);
    for (int k = 0; k < kDel; ++k) ASSERT_TRUE(s.erase_splice(k));
    stop.store(true, std::memory_order_release);
    for (auto& r : readers) r.join();
    EXPECT_EQ(false_negatives.load(), 0);
    EXPECT_EQ(s.size_slow(), static_cast<std::size_t>(400 - kDel));
    EXPECT_EQ(s.validate_slow(), "");
}

}  // namespace
