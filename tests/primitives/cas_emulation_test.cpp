// Footnote 1 made executable: Test&Set / Fetch&Add / exchange built from
// CAS alone must agree with the native RMWs, sequentially and under
// contention.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "lfll/primitives/cas_emulation.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

TEST(CasEmulation, FetchAddSequential) {
    std::atomic<int> v{10};
    EXPECT_EQ(cas_only::fetch_add(v, 5), 10);
    EXPECT_EQ(v.load(), 15);
    EXPECT_EQ(cas_only::fetch_add(v, -20), 15);
    EXPECT_EQ(v.load(), -5);
}

TEST(CasEmulation, FetchAddUnsigned64) {
    std::atomic<std::uint64_t> v{0};
    cas_only::fetch_add(v, std::uint64_t{1} << 40);
    EXPECT_EQ(v.load(), std::uint64_t{1} << 40);
}

TEST(CasEmulation, TestAndSetSequential) {
    std::atomic<bool> f{false};
    EXPECT_FALSE(cas_only::test_and_set(f));
    EXPECT_TRUE(f.load());
    EXPECT_TRUE(cas_only::test_and_set(f));  // already set
}

TEST(CasEmulation, ExchangeSequential) {
    std::atomic<int> v{1};
    EXPECT_EQ(cas_only::exchange(v, 2), 1);
    EXPECT_EQ(cas_only::exchange(v, 3), 2);
    EXPECT_EQ(v.load(), 3);
}

TEST(CasEmulation, FetchAddConcurrentSumExact) {
    std::atomic<long> v{0};
    const int iters = scaled(20000);
    std::vector<std::thread> ts;
    for (int t = 0; t < 8; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < iters; ++i) cas_only::fetch_add(v, 1L);
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(v.load(), 8L * iters);
}

TEST(CasEmulation, TestAndSetExactlyOneWinnerPerRound) {
    for (int round = 0; round < scaled(500); ++round) {
        std::atomic<bool> flag{false};
        std::atomic<int> winners{0};
        std::atomic<bool> go{false};
        std::vector<std::thread> ts;
        for (int t = 0; t < 4; ++t) {
            ts.emplace_back([&] {
                while (!go.load(std::memory_order_acquire)) {
                }
                if (!cas_only::test_and_set(flag)) winners.fetch_add(1);
            });
        }
        go.store(true, std::memory_order_release);
        for (auto& th : ts) th.join();
        EXPECT_EQ(winners.load(), 1) << "round " << round;
    }
}

TEST(CasEmulation, EmulatedTasLockProvidesMutualExclusion) {
    // A spin lock whose acquire uses only the emulated Test&Set: the
    // footnote's claim end-to-end.
    std::atomic<bool> flag{false};
    long counter = 0;
    const int iters = scaled(10000);
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < iters; ++i) {
                while (cas_only::test_and_set(flag)) {
                }
                counter++;
                flag.store(false, std::memory_order_release);
            }
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(counter, 4L * iters);
}

}  // namespace
