// Every lock in the baseline family must actually provide mutual
// exclusion and make progress under contention; the benches compare their
// performance, these tests pin their correctness.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "lfll/primitives/mcs_lock.hpp"
#include "lfll/primitives/spinlock.hpp"
#include "lfll/primitives/ticket_lock.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

// kIters is caller-chosen: FIFO spin locks (ticket, MCS) hand off the
// lock in strict order, so on a host with fewer cores than threads each
// handoff can cost a scheduling quantum — their hammers use small counts
// (the convoy collapse itself is measured by bench_e1, not tested here).
template <typename Lock>
void hammer_counter(int kIters) {
    Lock lock;
    long counter = 0;
    constexpr int kThreads = 8;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                std::lock_guard guard(lock);
                counter++;  // torn increments appear as a wrong total
            }
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(Locks, TasLockMutualExclusion) { hammer_counter<tas_lock>(scaled(20000)); }
TEST(Locks, TtasLockMutualExclusion) { hammer_counter<ttas_lock>(scaled(20000)); }
TEST(Locks, TicketLockMutualExclusion) { hammer_counter<ticket_lock>(scaled(1000)); }
TEST(Locks, McsBasicLockMutualExclusion) { hammer_counter<mcs_basic_lock>(scaled(1000)); }

TEST(Locks, TasTryLock) {
    tas_lock l;
    EXPECT_TRUE(l.try_lock());
    EXPECT_FALSE(l.try_lock());
    l.unlock();
    EXPECT_TRUE(l.try_lock());
    l.unlock();
}

TEST(Locks, TtasTryLock) {
    ttas_lock l;
    EXPECT_TRUE(l.try_lock());
    EXPECT_FALSE(l.try_lock());
    l.unlock();
}

TEST(Locks, TicketTryLock) {
    ticket_lock l;
    EXPECT_TRUE(l.try_lock());
    EXPECT_FALSE(l.try_lock());
    l.unlock();
    EXPECT_TRUE(l.try_lock());
    l.unlock();
}

TEST(Locks, TicketLockGrantsInArrivalOrder) {
    // Hold the lock, start waiter 0, give it ample time to take its
    // ticket, then start waiter 1. FIFO grant means 0 enters before 1.
    ticket_lock lock;
    lock.lock();
    std::vector<int> grant_order;
    std::thread w0([&] {
        lock.lock();
        grant_order.push_back(0);
        lock.unlock();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::thread w1([&] {
        lock.lock();
        grant_order.push_back(1);
        lock.unlock();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    lock.unlock();
    w0.join();
    w1.join();
    EXPECT_EQ(grant_order, (std::vector<int>{0, 1}));
}

TEST(Locks, McsGuardScopes) {
    mcs_lock lock;
    int shared = 0;
    {
        mcs_lock::guard g(lock);
        shared = 1;
    }
    {
        mcs_lock::guard g(lock);
        EXPECT_EQ(shared, 1);
    }
}

}  // namespace
