// Primitive generators and backoff: determinism, distribution sanity,
// bound growth, and jitter.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "lfll/primitives/backoff.hpp"
#include "lfll/primitives/rng.hpp"
#include "lfll/primitives/zipf.hpp"

namespace {

using namespace lfll;

TEST(Rng, DeterministicForSeed) {
    xorshift64 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    xorshift64 a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++same;
    }
    EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedStillWorks) {
    xorshift64 r(0);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(r.next());
    EXPECT_EQ(seen.size(), 1000u);  // no fixed point, no short cycle
}

TEST(Rng, NextBelowStaysInRange) {
    xorshift64 r(9);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(r.next_below(17), 17u);
    }
}

TEST(Rng, NextDoubleInUnitInterval) {
    xorshift64 r(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, UniformityRoughCheck) {
    xorshift64 r(123);
    constexpr int kBuckets = 16, kSamples = 160000;
    std::vector<int> counts(kBuckets, 0);
    for (int i = 0; i < kSamples; ++i) counts[r.next_below(kBuckets)]++;
    for (int c : counts) {
        EXPECT_GT(c, kSamples / kBuckets * 0.9);
        EXPECT_LT(c, kSamples / kBuckets * 1.1);
    }
}

TEST(Zipf, ThetaZeroIsUniformish) {
    zipf_generator z(100, 0.0);
    xorshift64 r(5);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 100000; ++i) counts[z(r)]++;
    EXPECT_LT(counts[0], 2 * counts[99] + 100);  // no strong head skew
}

TEST(Zipf, HighThetaConcentratesOnHead) {
    zipf_generator z(1000, 1.2);
    xorshift64 r(5);
    int head = 0;
    constexpr int kSamples = 50000;
    for (int i = 0; i < kSamples; ++i) {
        if (z(r) < 10) ++head;
    }
    // With theta=1.2 the top-10 of 1000 keys draw well over a third.
    EXPECT_GT(head, kSamples / 3);
}

TEST(Zipf, SamplesAlwaysInUniverse) {
    zipf_generator z(37, 0.99);
    xorshift64 r(8);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(z(r), 37u);
    EXPECT_EQ(z.universe(), 37u);
}

TEST(Backoff, DisabledConfigDoesNotBlock) {
    backoff bo(no_backoff());
    for (int i = 0; i < 1000; ++i) bo();  // must return promptly
    SUCCEED();
}

TEST(Backoff, RunsAndResets) {
    backoff bo;
    for (int i = 0; i < 50; ++i) bo();
    bo.reset();
    for (int i = 0; i < 5; ++i) bo();
    SUCCEED();  // behavioural: no hang, no crash; timing is jittered
}

}  // namespace
