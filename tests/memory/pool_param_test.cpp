// Parameterized property sweeps for node_pool: across initial capacities,
// thread counts, and hold depths, the pool must preserve (a) exclusive
// handout, (b) full return at quiescence, (c) bounded growth when demand
// is bounded.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "lfll/core/node.hpp"
#include "lfll/memory/node_pool.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;
using node_t = list_node<int>;

// initial capacity, threads, max nodes held per thread
using pool_params = std::tuple<std::size_t, int, int>;

std::string name(const ::testing::TestParamInfo<pool_params>& info) {
    return "cap" + std::to_string(std::get<0>(info.param)) + "_t" +
           std::to_string(std::get<1>(info.param)) + "_h" +
           std::to_string(std::get<2>(info.param));
}

class PoolSweep : public ::testing::TestWithParam<pool_params> {};

TEST_P(PoolSweep, ChurnPreservesInvariants) {
    const auto [capacity, threads, hold] = GetParam();
    node_pool<node_t> pool(capacity);
    std::atomic<bool> overlap{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < threads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0x90019001 + static_cast<std::uint64_t>(t) * 31);
            std::vector<node_t*> held;
            for (int i = 0; i < scaled(3000); ++i) {
                if (held.size() < static_cast<std::size_t>(hold) && rng.next() % 2 == 0) {
                    node_t* n = pool.alloc();
                    // Exclusive handout probe: stamp, verify, keep.
                    n->construct_cell(t);
                    held.push_back(n);
                } else if (!held.empty()) {
                    node_t* n = held.back();
                    held.pop_back();
                    if (n->value() != t) overlap.store(true);
                    n->on_reclaim();
                    pool.release(n);
                }
            }
            for (node_t* n : held) {
                if (n->value() != t) overlap.store(true);
                n->on_reclaim();
                pool.release(n);
            }
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_FALSE(overlap.load());
    EXPECT_EQ(pool.free_count(), pool.capacity());
    // Growth is bounded by peak demand: threads*hold outstanding plus the
    // doubling slack (each grow doubles, so at most 4x the true need or
    // the initial capacity, whichever is larger). With magazines on, each
    // thread may additionally strand up to two magazines of free nodes in
    // its cache (invisible to other threads' allocs), so peak demand
    // includes that stash.
    std::size_t peak = static_cast<std::size_t>(threads) * hold;
    if (pool.magazines_enabled()) {
        peak += static_cast<std::size_t>(threads) * 2 * pool.magazine_rounds();
    }
    EXPECT_LE(pool.capacity(), std::max(capacity, 4 * peak) + capacity);
    // Free-list uniqueness at quiescence.
    std::set<const node_t*> seen;
    pool.for_each_free([&](const node_t* n) {
        EXPECT_TRUE(seen.insert(n).second) << "node on free list twice";
    });
    EXPECT_EQ(seen.size(), pool.capacity());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PoolSweep,
                         ::testing::Values(pool_params{1, 2, 2},      // grows from nothing
                                           pool_params{4, 8, 4},      // heavy growth pressure
                                           pool_params{64, 4, 8},     // comfortable
                                           pool_params{512, 8, 16},   // no growth expected
                                           pool_params{16, 6, 1},     // shallow holds, high churn
                                           pool_params{8, 3, 32}),    // deep holds force growth
                         name);

}  // namespace
