// Unit tests for the corrected reference-count word (ref_count.hpp):
// encoding, claim transitions, and the multi-releaser race from the
// Michael & Scott correction — only ONE releaser may ever win the claim.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "lfll/memory/ref_count.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

TEST(RefCount, EncodingRoundTrips) {
    EXPECT_EQ(refct_count(0), 0u);
    EXPECT_EQ(refct_count(refct_one), 1u);
    EXPECT_EQ(refct_count(7 * refct_one), 7u);
    EXPECT_FALSE(refct_claimed(refct_one));
    EXPECT_TRUE(refct_claimed(refct_one | refct_claim));
    EXPECT_TRUE(refct_claimed(refct_claim));
}

TEST(RefCount, AcquireIncrementsCount) {
    std::atomic<refct_t> rc{refct_one};
    refct_acquire(rc);
    EXPECT_EQ(refct_count(rc.load()), 2u);
    EXPECT_FALSE(refct_claimed(rc.load()));
}

TEST(RefCount, ReleaseOfNonLastReferenceDoesNotClaim) {
    std::atomic<refct_t> rc{2 * refct_one};
    EXPECT_FALSE(refct_release(rc));
    EXPECT_EQ(refct_count(rc.load()), 1u);
}

TEST(RefCount, LastReleaseWinsClaim) {
    std::atomic<refct_t> rc{refct_one};
    EXPECT_TRUE(refct_release(rc));
    EXPECT_EQ(rc.load(), refct_claim);  // count 0, claimed
}

TEST(RefCount, UnclaimToOneRestoresSingleReference) {
    std::atomic<refct_t> rc{refct_one};
    ASSERT_TRUE(refct_release(rc));
    refct_unclaim_to_one(rc);
    EXPECT_EQ(rc.load(), refct_one);
    EXPECT_FALSE(refct_claimed(rc.load()));
}

TEST(RefCount, TransientIncrementOnClaimedNodeIsPreserved) {
    // A stale SafeRead may bump a claimed node; unclaim_to_one must not
    // clobber the in-flight reference (this is why it is a fetch_add, not
    // a store — the original paper's bug).
    std::atomic<refct_t> rc{refct_one};
    ASSERT_TRUE(refct_release(rc));   // rc == 1 (claimed)
    refct_acquire(rc);                // transient SafeRead: rc == 3
    refct_unclaim_to_one(rc);         // must yield count 2, not count 1
    EXPECT_EQ(refct_count(rc.load()), 2u);
    EXPECT_FALSE(refct_claimed(rc.load()));
}

TEST(RefCount, ClaimResponsibilityTransfersThroughTransient) {
    // Releaser takes count to 0 but a transient +1 blocks its claim CAS;
    // the transient's matching release must then win the claim instead.
    std::atomic<refct_t> rc{refct_one};
    refct_acquire(rc);                 // transient arrives first: count 2
    EXPECT_FALSE(refct_release(rc));   // real releaser: count 1, no claim
    EXPECT_TRUE(refct_release(rc));    // transient's undo claims
    EXPECT_TRUE(refct_claimed(rc.load()));
}

// The M&S race, hammered: N threads each hold one reference and release
// concurrently. Exactly one must win the claim.
TEST(RefCount, ExactlyOneReleaserWinsClaim) {
    for (int round = 0; round < scaled(200) * 4; ++round) {
        constexpr int kThreads = 8;
        std::atomic<refct_t> rc{kThreads * refct_one};
        std::atomic<int> winners{0};
        std::atomic<bool> go{false};
        std::vector<std::thread> ts;
        ts.reserve(kThreads);
        for (int i = 0; i < kThreads; ++i) {
            ts.emplace_back([&] {
                while (!go.load(std::memory_order_acquire)) {
                }
                if (refct_release(rc)) winners.fetch_add(1);
            });
        }
        go.store(true, std::memory_order_release);
        for (auto& t : ts) t.join();
        EXPECT_EQ(winners.load(), 1) << "round " << round;
        EXPECT_EQ(rc.load(), refct_claim);
    }
}

// Acquire/release churn by many threads around a single base reference
// must never reach zero or set the claim bit.
TEST(RefCount, ChurnNeverClaimsWhileBaseReferenceHeld) {
    std::atomic<refct_t> rc{refct_one};  // the base reference
    std::atomic<bool> stop{false};
    std::vector<std::thread> ts;
    for (int i = 0; i < 4; ++i) {
        ts.emplace_back([&] {
            for (int n = 0; n < scaled(20000) && !stop.load(std::memory_order_relaxed); ++n) {
                refct_acquire(rc);
                if (refct_release(rc)) {
                    stop.store(true);
                    ADD_FAILURE() << "claim won while base reference held";
                }
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(rc.load(), refct_one);
}

}  // namespace
