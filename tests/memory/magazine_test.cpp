// The magazine fast path in front of Alloc/Reclaim (Figs. 17-18), typed
// over all three reclamation policies: churn accounting, depot cycling,
// thread-exit flush, the on/off toggles, and the telemetry counters.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lfll/core/node.hpp"
#include "lfll/memory/node_pool.hpp"
#include "lfll/primitives/rng.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"
#include "lfll/telemetry/metrics.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

template <typename Policy>
class Magazine : public ::testing::Test {};

class PolicyNames {
public:
    template <typename Policy>
    static std::string GetName(int) {
        return Policy::name;
    }
};

using AllPolicies =
    ::testing::Types<valois_refcount, hazard_policy, epoch_policy>;
TYPED_TEST_SUITE(Magazine, AllPolicies, PolicyNames);

template <typename Policy>
using pool_for = node_pool<list_node<int, Policy>, Policy>;

// At quiescence the pool must account for every node exactly once across
// the global free list and all magazines.
template <typename Policy>
void expect_fully_accounted(pool_for<Policy>& pool) {
    pool.drain_retired();
    EXPECT_EQ(pool.free_count(), pool.capacity());
    std::set<const list_node<int, Policy>*> seen;
    pool.for_each_free([&](const list_node<int, Policy>* n) {
        EXPECT_TRUE(seen.insert(n).second) << "node accounted twice";
    });
    EXPECT_EQ(seen.size(), pool.capacity());
}

TYPED_TEST(Magazine, EnabledByDefaultAndServesDistinctNodes) {
    pool_for<TypeParam> pool(64);
    ASSERT_TRUE(pool.magazines_enabled());
    // Warm the magazine, then check recycled handouts stay exclusive and
    // arrive with the alloc contract (one reference, null next).
    std::vector<list_node<int, TypeParam>*> held;
    for (int i = 0; i < 32; ++i) held.push_back(pool.alloc());
    for (auto* n : held) pool.unref(n);
    pool.drain_retired();
    std::set<list_node<int, TypeParam>*> seen;
    for (int i = 0; i < 32; ++i) {
        auto* n = pool.alloc();
        EXPECT_TRUE(seen.insert(n).second) << "node handed out twice";
        EXPECT_EQ(refct_count(n->refct.load()), 1u);
        EXPECT_FALSE(refct_claimed(n->refct.load()));
        EXPECT_EQ(n->next.load(), nullptr);
    }
    for (auto* n : seen) pool.unref(n);
    expect_fully_accounted(pool);
}

TYPED_TEST(Magazine, MultiThreadChurnStaysAccounted) {
    pool_for<TypeParam> pool(256);
    constexpr int kThreads = 6;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0x3a93 + static_cast<std::uint64_t>(t) * 977);
            std::vector<list_node<int, TypeParam>*> held;
            for (int i = 0; i < scaled(4000); ++i) {
                if (held.size() < 8 && rng.next() % 2 == 0) {
                    held.push_back(pool.alloc());
                } else if (!held.empty()) {
                    pool.unref(held.back());
                    held.pop_back();
                }
            }
            for (auto* n : held) pool.unref(n);
        });
    }
    for (auto& th : ts) th.join();
    expect_fully_accounted(pool);
}

TYPED_TEST(Magazine, ThreadExitFlushesResidualMagazines) {
    pool_for<TypeParam> pool(128);
    std::thread worker([&] {
        // Fill this thread's magazines and walk away without flushing.
        std::vector<list_node<int, TypeParam>*> held;
        for (int i = 0; i < 64; ++i) held.push_back(pool.alloc());
        for (auto* n : held) pool.unref(n);
        pool.drain_retired();  // deferred policies: land nodes in OUR cache
    });
    worker.join();
    // The exit flush must have pushed every cached node somewhere the
    // pool can account for (global list or depot) — nothing leaked.
    expect_fully_accounted(pool);
    // And after an explicit full flush, nothing is cached at all.
    pool.flush_magazines();
    EXPECT_EQ(pool.magazine_cached_count(), 0u);
    expect_fully_accounted(pool);
}

TYPED_TEST(Magazine, DepotCyclesFullMagazines) {
    pool_config cfg;
    cfg.initial_capacity = 128;
    cfg.magazines = 1;
    cfg.mag_rounds = 4;  // tiny magazines force depot traffic fast
    pool_for<TypeParam> pool(cfg);
    ASSERT_EQ(pool.magazine_rounds(), 4u);
    std::vector<list_node<int, TypeParam>*> held;
    for (int i = 0; i < 40; ++i) held.push_back(pool.alloc());
    for (auto* n : held) pool.unref(n);
    pool.drain_retired();  // deferred policies reclaim here, via magazines
    // 40 frees through 4-round magazines must have parked full magazines.
    EXPECT_GT(pool.depot_full_magazines(), 0u);
    EXPECT_GT(pool.magazine_cached_count(), 0u);
    // Alloc pulls them back out of the depot (same nodes, no growth).
    const std::size_t cap_before = pool.capacity();
    held.clear();
    for (int i = 0; i < 40; ++i) held.push_back(pool.alloc());
    EXPECT_EQ(pool.capacity(), cap_before);
    for (auto* n : held) pool.unref(n);
    expect_fully_accounted(pool);
}

TYPED_TEST(Magazine, PerPoolToggleOffBypassesCaches) {
    pool_config cfg;
    cfg.initial_capacity = 32;
    cfg.magazines = 0;
    pool_for<TypeParam> pool(cfg);
    EXPECT_FALSE(pool.magazines_enabled());
    std::vector<list_node<int, TypeParam>*> held;
    for (int i = 0; i < 16; ++i) held.push_back(pool.alloc());
    for (auto* n : held) pool.unref(n);
    pool.drain_retired();
    EXPECT_EQ(pool.magazine_cached_count(), 0u);
    EXPECT_EQ(pool.depot_full_magazines(), 0u);
    expect_fully_accounted(pool);
}

TYPED_TEST(Magazine, TelemetryCountersPublishOnFlush) {
    auto& reg = telemetry::registry::global();
    const std::string label =
        std::string("policy=\"") + TypeParam::name + "\"";
    auto& hits = reg.get_counter("lfll_pool_magazine_hits_total", label);
    auto& flushes = reg.get_counter("lfll_pool_magazine_flushes_total", label);
    const auto hits_before = hits.value();
    const auto flushes_before = flushes.value();
    {
        pool_config cfg;
        cfg.initial_capacity = 64;
        cfg.magazines = 1;
        cfg.mag_rounds = 4;
        pool_for<TypeParam> pool(cfg);
        for (int round = 0; round < 50; ++round) {
            auto* n = pool.alloc();
            pool.unref(n);
            pool.drain_retired();
        }
        pool.flush_magazines();  // folds this thread's tallies
    }
    EXPECT_GT(hits.value(), hits_before);
    EXPECT_GT(flushes.value(), flushes_before);
}

// Two pools back to back on the same thread: the second pool's id must
// not alias the first's stale cache record (detach + re-register path).
TYPED_TEST(Magazine, SequentialPoolsOnOneThreadDoNotAlias) {
    for (int round = 0; round < 3; ++round) {
        pool_for<TypeParam> pool(32);
        std::vector<list_node<int, TypeParam>*> held;
        for (int i = 0; i < 16; ++i) held.push_back(pool.alloc());
        for (auto* n : held) pool.unref(n);
        expect_fully_accounted(pool);
    }
}

// The process-wide override beats the build default for new pools.
TEST(MagazineToggle, ProcessOverrideControlsNewPools) {
    set_magazine_override(0);
    {
        node_pool<list_node<int>> off_pool(16);
        EXPECT_FALSE(off_pool.magazines_enabled());
    }
    set_magazine_override(1);
    {
        node_pool<list_node<int>> on_pool(16);
        EXPECT_TRUE(on_pool.magazines_enabled());
    }
    set_magazine_override(-1);  // restore the build/env default
}

// Magazine-off pools must still pass the LIFO recycling contract the
// seed tests pin on the global list.
TEST(MagazineToggle, GlobalListStillLIFOWhenOff) {
    pool_config cfg;
    cfg.initial_capacity = 8;
    cfg.magazines = 0;
    node_pool<list_node<int>> pool(cfg);
    auto* a = pool.alloc();
    pool.release(a);
    auto* b = pool.alloc();
    EXPECT_EQ(a, b);
    pool.release(b);
}

}  // namespace
