// Side-arena reclamation audit (§5 discipline applied to payloads): the
// per-chunk live counts must balance emplace/release exactly, trim()
// must return fully-released chunks without touching live payloads, and
// the original append-only mode (never release) must keep every byte
// stable. Destruction counting uses an instrumented payload so leaks
// and double-destroys are both visible.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "lfll/memory/side_arena.hpp"
#include "test_scale.hpp"

namespace {

using namespace lfll;

struct counted_payload {
    static std::atomic<int> live;
    int v;
    explicit counted_payload(int x) : v(x) { live.fetch_add(1); }
    counted_payload(const counted_payload& o) : v(o.v) { live.fetch_add(1); }
    ~counted_payload() { live.fetch_sub(1); }
};
std::atomic<int> counted_payload::live{0};

TEST(SideArena, LiveCountBalancesEmplaceAndRelease) {
    side_arena<int> a(8);
    std::vector<arena_ref<int>> refs;
    for (int i = 0; i < 100; ++i) refs.push_back(a.emplace(i));
    EXPECT_EQ(a.live_count(), 100u);
    EXPECT_EQ(a.size(), 100u);
    for (int i = 0; i < 100; i += 2) a.release(refs[i]);
    EXPECT_EQ(a.live_count(), 50u);
    for (int i = 1; i < 100; i += 2) EXPECT_EQ(*refs[i], i);  // still readable
    for (int i = 1; i < 100; i += 2) a.release(refs[i]);
    EXPECT_EQ(a.live_count(), 0u);
}

TEST(SideArena, TrimReclaimsFullyReleasedChunksOnly) {
    counted_payload::live.store(0);
    {
        side_arena<counted_payload> a(8);
        std::vector<arena_ref<counted_payload>> refs;
        for (int i = 0; i < 64; ++i) refs.push_back(a.emplace(i));
        const std::size_t cap_full = a.capacity_bytes();

        // Release everything in the older chunks; keep the newest 8 live.
        for (int i = 0; i < 56; ++i) a.release(refs[i]);
        const std::size_t freed = a.trim();
        EXPECT_GE(freed, 6u);  // 64 slots / 8 per chunk, head retained
        EXPECT_LT(a.capacity_bytes(), cap_full);
        EXPECT_EQ(a.live_count(), 8u);
        // Trimmed chunks ran their destructors; live payloads did not.
        EXPECT_EQ(counted_payload::live.load(), 8);
        for (int i = 56; i < 64; ++i) EXPECT_EQ(refs[i]->v, i);

        // A second trim with nothing newly released is a no-op.
        EXPECT_EQ(a.trim(), 0u);

        // New emplaces after a trim land in fresh storage and work.
        auto r = a.emplace(777);
        EXPECT_EQ(r->v, 777);
    }
    EXPECT_EQ(counted_payload::live.load(), 0) << "arena dtor leaked payloads";
}

TEST(SideArena, TrimKeepsPartiallyLiveChunks) {
    counted_payload::live.store(0);
    side_arena<counted_payload> a(8);
    std::vector<arena_ref<counted_payload>> refs;
    for (int i = 0; i < 24; ++i) refs.push_back(a.emplace(i));
    // One survivor per chunk: nothing is reclaimable.
    for (int i = 0; i < 24; ++i) {
        if (i % 8 != 3) a.release(refs[i]);
    }
    EXPECT_EQ(a.trim(), 0u);
    EXPECT_EQ(counted_payload::live.load(), 24);  // no destructor ran
    for (int i = 3; i < 24; i += 8) EXPECT_EQ(refs[i]->v, i);
}

TEST(SideArena, ResetStillClearsEverything) {
    counted_payload::live.store(0);
    side_arena<counted_payload> a(8);
    std::vector<arena_ref<counted_payload>> refs;
    for (int i = 0; i < 40; ++i) refs.push_back(a.emplace(i));
    for (int i = 0; i < 10; ++i) a.release(refs[i]);  // partial release is fine
    a.reset();
    EXPECT_EQ(counted_payload::live.load(), 0);
    EXPECT_EQ(a.size(), 0u);
    EXPECT_EQ(a.live_count(), 0u);
    auto r = a.emplace(5);
    EXPECT_EQ(r->v, 5);
}

TEST(SideArena, ConcurrentEmplaceReleaseThenQuiescentTrim) {
    side_arena<std::string> a(64);
    constexpr int kThreads = 4;
    const int per_thread = lfll_test::scaled(5000);
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            // Full churn: every handle released. The counters must
            // balance no matter how emplaces interleave across chunks.
            for (int i = 0; i < per_thread; ++i) {
                arena_ref<std::string> r =
                    a.emplace("payload-" + std::to_string(t * 1000000 + i));
                EXPECT_EQ(*r, "payload-" + std::to_string(t * 1000000 + i));
                a.release(r);
            }
        });
    }
    for (auto& th : ts) th.join();

    EXPECT_EQ(a.live_count(), 0u);
    const std::size_t cap_before = a.capacity_bytes();
    EXPECT_GT(a.trim(), 0u);  // quiescent: every non-head chunk reclaimable
    EXPECT_LT(a.capacity_bytes(), cap_before)
        << "churny arena did not shrink under trim";
    // The arena remains usable: fresh payloads after the trim.
    auto r = a.emplace("after-trim");
    EXPECT_EQ(*r, "after-trim");
    EXPECT_EQ(a.live_count(), 1u);
}

}  // namespace
