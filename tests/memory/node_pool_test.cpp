// node_pool: Alloc/Reclaim (Figs. 17-18), SafeRead/Release (Figs. 15-16),
// slab growth, free-list ABA safety, and the reclamation cascade.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lfll/core/node.hpp"
#include "lfll/memory/node_pool.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;
using node_t = list_node<int>;
using lfll_test::scaled;
using pool_t = node_pool<node_t>;

TEST(NodePool, AllocHandsOutDistinctNodes) {
    pool_t pool(16);
    std::set<node_t*> seen;
    for (int i = 0; i < 16; ++i) {
        node_t* n = pool.alloc();
        ASSERT_NE(n, nullptr);
        EXPECT_TRUE(seen.insert(n).second) << "node handed out twice";
        EXPECT_EQ(refct_count(n->refct.load()), 1u);     // caller's reference
        EXPECT_FALSE(refct_claimed(n->refct.load()));
        EXPECT_EQ(n->next.load(), nullptr);
    }
}

TEST(NodePool, ReleaseReturnsNodeToFreeList) {
    pool_t pool(4);
    const std::size_t before = pool.free_count();
    node_t* n = pool.alloc();
    EXPECT_EQ(pool.free_count(), before - 1);
    pool.release(n);
    EXPECT_EQ(pool.free_count(), before);
}

TEST(NodePool, FreeListIsLIFO) {
    pool_t pool(8);
    node_t* a = pool.alloc();
    pool.release(a);
    node_t* b = pool.alloc();
    EXPECT_EQ(a, b) << "free list should behave as a stack";
    pool.release(b);
}

TEST(NodePool, GrowsWhenExhausted) {
    pool_t pool(2);
    std::vector<node_t*> held;
    for (int i = 0; i < 100; ++i) held.push_back(pool.alloc());
    EXPECT_GE(pool.capacity(), 100u);
    std::set<node_t*> uniq(held.begin(), held.end());
    EXPECT_EQ(uniq.size(), held.size());
    for (node_t* n : held) pool.release(n);
    EXPECT_EQ(pool.free_count(), pool.capacity());
}

TEST(NodePool, AddRefPinsNodeAcrossRelease) {
    pool_t pool(4);
    node_t* n = pool.alloc();
    pool.add_ref(n);
    const std::size_t free_before = pool.free_count();
    pool.release(n);  // still one reference: must not be reclaimed
    EXPECT_EQ(pool.free_count(), free_before);
    pool.release(n);
    EXPECT_EQ(pool.free_count(), free_before + 1);
}

TEST(NodePool, SafeReadOfNullLocationReturnsNull) {
    pool_t pool(4);
    std::atomic<node_t*> loc{nullptr};
    EXPECT_EQ(pool.safe_read(loc), nullptr);
}

TEST(NodePool, SafeReadAcquiresReference) {
    pool_t pool(4);
    node_t* n = pool.alloc();
    std::atomic<node_t*> loc{n};
    node_t* r = pool.safe_read(loc);
    EXPECT_EQ(r, n);
    EXPECT_EQ(refct_count(n->refct.load()), 2u);
    pool.release(r);
    pool.release(n);
}

TEST(NodePool, ReclaimCascadesThroughLinks) {
    // cell -> aux -> aux2; releasing the sole reference on cell must
    // reclaim the whole chain (drop_links drives the cascade).
    pool_t pool(8);
    node_t* cell = pool.alloc();
    cell->construct_cell(7);
    node_t* aux = pool.alloc();
    node_t* aux2 = pool.alloc();
    // Transfer our private references into the links.
    aux->next.store(aux2, std::memory_order_relaxed);
    cell->next.store(aux, std::memory_order_relaxed);
    const std::size_t free_before = pool.free_count();
    pool.release(cell);
    EXPECT_EQ(pool.free_count(), free_before + 3);
}

TEST(NodePool, CascadeHandlesLongChains) {
    // A chain far deeper than release()'s inline stack must still be fully
    // reclaimed (exercises the overflow path, and would blow the C stack
    // if the cascade were recursive).
    pool_t pool(4);
    constexpr int kLen = 5000;
    node_t* head = pool.alloc();
    node_t* cur = head;
    for (int i = 1; i < kLen; ++i) {
        node_t* n = pool.alloc();
        cur->next.store(n, std::memory_order_relaxed);  // transfer reference
        cur = n;
    }
    pool.release(head);
    EXPECT_EQ(pool.free_count(), pool.capacity());
}

TEST(NodePool, PayloadDestroyedExactlyOnceOnReclaim) {
    static std::atomic<int> live{0};
    struct probe {
        probe() { live.fetch_add(1); }
        probe(const probe&) { live.fetch_add(1); }
        ~probe() { live.fetch_sub(1); }
    };
    node_pool<list_node<probe>> pool(4);
    auto* n = pool.alloc();
    n->construct_cell();
    EXPECT_EQ(live.load(), 1);
    pool.release(n);
    EXPECT_EQ(live.load(), 0);
    // Reuse must not double-destroy.
    auto* m = pool.alloc();
    EXPECT_EQ(live.load(), 0);
    pool.release(m);
    EXPECT_EQ(live.load(), 0);
}

// Concurrent alloc/release churn: no node may ever be handed to two
// threads at once, and all nodes must come home at the end.
TEST(NodePool, ConcurrentChurnIsLinear) {
    pool_t pool(64);
    constexpr int kThreads = 8;
    const int kIters = scaled(5000);
    std::atomic<bool> corrupted{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                node_t* n = pool.alloc();
                // Ownership stamp: if another thread holds this node, the
                // value check below will trip.
                n->construct_cell(t * kIters + i);
                if (n->value() != t * kIters + i) corrupted.store(true);
                n->on_reclaim();  // manual payload teardown for the test
                pool.release(n);
            }
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_FALSE(corrupted.load());
    EXPECT_EQ(pool.free_count(), pool.capacity());
}

// The paper's ABA scenario on the free list: thread 1 reads head A, is
// delayed; A is popped, reused, and other nodes pushed. Because a held
// reference prevents A's reuse from completing into a re-push, thread 1's
// CAS can only succeed if A truly is the current head. We approximate
// with heavy concurrent churn plus invariant checks.
TEST(NodePool, FreeListSurvivesAdversarialChurn) {
    pool_t pool(8);  // tiny: maximizes head reuse pressure
    constexpr int kThreads = 8;
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0xabcdef + static_cast<std::uint64_t>(t));
            std::vector<node_t*> held;
            for (int i = 0; i < scaled(4000); ++i) {
                if (held.size() < 3 && rng.next() % 2 == 0) {
                    held.push_back(pool.alloc());
                } else if (!held.empty()) {
                    pool.release(held.back());
                    held.pop_back();
                }
            }
            for (node_t* n : held) pool.release(n);
        });
    }
    for (auto& t : ts) t.join();
    EXPECT_EQ(pool.free_count(), pool.capacity());
    // Every slab node must be findable on the free list exactly once.
    std::set<const node_t*> free_set;
    pool.for_each_free([&](const node_t* n) {
        EXPECT_TRUE(free_set.insert(n).second) << "node on free list twice";
    });
    EXPECT_EQ(free_set.size(), pool.capacity());
}

}  // namespace
