// Buddy allocator, second pass: size-class boundaries, alignment
// guarantees, split/coalesce patterns, and fragmentation behaviour.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "lfll/memory/buddy_allocator.hpp"

namespace {

using namespace lfll;

TEST(BuddyExtra, SizeClassBoundaries) {
    buddy_allocator a(1 << 14, 64);
    // Exactly at a power of two: no rounding.
    void* p64 = a.allocate(64);
    EXPECT_EQ(a.free_bytes(), (1u << 14) - 64);
    a.deallocate(p64);
    // One past: next class.
    void* p65 = a.allocate(65);
    EXPECT_EQ(a.free_bytes(), (1u << 14) - 128);
    a.deallocate(p65);
    // Below the minimum block: still one min block.
    void* p1 = a.allocate(1);
    EXPECT_EQ(a.free_bytes(), (1u << 14) - 64);
    a.deallocate(p1);
}

TEST(BuddyExtra, BlocksAlignedToTheirSize) {
    buddy_allocator a(1 << 16, 64);
    const auto base = reinterpret_cast<std::uintptr_t>(a.allocate(1 << 16));
    a.deallocate(reinterpret_cast<void*>(base));
    for (std::size_t sz : {64u, 128u, 256u, 1024u, 4096u}) {
        void* p = a.allocate(sz);
        ASSERT_NE(p, nullptr);
        const auto off = reinterpret_cast<std::uintptr_t>(p) - base;
        EXPECT_EQ(off % sz, 0u) << "block of " << sz << " misaligned";
        a.deallocate(p);
        a.coalesce();
    }
}

TEST(BuddyExtra, SplitProducesAllSizeClasses) {
    buddy_allocator a(1 << 12, 64);  // orders 0..6
    void* p = a.allocate(64);
    // After splitting 4096 down to 64, exactly one free block of each of
    // 64, 128, 256, ..., 2048 exists: free_bytes confirms the telescope.
    EXPECT_EQ(a.free_bytes(), (1u << 12) - 64);
    EXPECT_EQ(a.largest_free_block(), 2048u);
    a.deallocate(p);
}

TEST(BuddyExtra, PartialCoalesceStopsAtAllocatedBuddy) {
    buddy_allocator a(1 << 12, 64);
    void* a1 = a.allocate(64);  // occupies granule 0
    void* a2 = a.allocate(64);  // its buddy, granule 1
    a.deallocate(a1);
    a.coalesce();
    // a1's buddy is allocated: the 64-block cannot merge upward.
    EXPECT_EQ(a.largest_free_block(), 2048u);
    void* again = a.allocate(64);
    EXPECT_EQ(again, a1);  // the freed block is reused, not leaked
    a.deallocate(a2);
    a.deallocate(again);
    a.coalesce();
    EXPECT_EQ(a.largest_free_block(), 1u << 12);
}

TEST(BuddyExtra, CheckerboardFragmentationBlocksLargeAllocs) {
    buddy_allocator a(1 << 12, 64);  // 64 granules
    std::vector<void*> blocks;
    for (int i = 0; i < 64; ++i) blocks.push_back(a.allocate(64));
    // Free every second block: half the bytes free, nothing coalesces.
    for (std::size_t i = 0; i < blocks.size(); i += 2) a.deallocate(blocks[i]);
    a.coalesce();
    EXPECT_EQ(a.free_bytes(), (1u << 12) / 2);
    EXPECT_EQ(a.largest_free_block(), 64u);
    EXPECT_EQ(a.allocate(128), nullptr);  // fragmentation is real
    for (std::size_t i = 1; i < blocks.size(); i += 2) a.deallocate(blocks[i]);
    a.coalesce();
    EXPECT_EQ(a.largest_free_block(), 1u << 12);
}

TEST(BuddyExtra, ExhaustionRecoversAfterFrees) {
    buddy_allocator a(1 << 12, 64);
    std::vector<void*> all;
    for (;;) {
        void* p = a.allocate(64);
        if (p == nullptr) break;
        all.push_back(p);
    }
    EXPECT_EQ(all.size(), 64u);
    EXPECT_EQ(a.free_bytes(), 0u);
    a.deallocate(all.back());
    all.pop_back();
    void* p = a.allocate(64);
    EXPECT_NE(p, nullptr);
    a.deallocate(p);
    for (void* q : all) a.deallocate(q);
}

TEST(BuddyExtra, DistinctArenasAreIndependent) {
    buddy_allocator a(1 << 12, 64), b(1 << 12, 64);
    void* pa = a.allocate(256);
    void* pb = b.allocate(256);
    EXPECT_NE(pa, pb);
    a.deallocate(pa);
    EXPECT_EQ(a.free_bytes(), 1u << 12);
    EXPECT_EQ(b.free_bytes(), (1u << 12) - 256);
    b.deallocate(pb);
}

TEST(BuddyExtra, RepeatedSplitCoalesceCycles) {
    buddy_allocator a(1 << 14, 64);
    for (int round = 0; round < 50; ++round) {
        std::set<void*> live;
        for (std::size_t sz : {64u, 512u, 128u, 2048u, 64u, 256u}) {
            void* p = a.allocate(sz);
            ASSERT_NE(p, nullptr) << "round " << round;
            EXPECT_TRUE(live.insert(p).second);
        }
        for (void* p : live) a.deallocate(p);
        a.coalesce();
        ASSERT_EQ(a.largest_free_block(), 1u << 14) << "round " << round;
    }
}

}  // namespace
