// Buddy allocator (§5.2 / thesis [28] extension): size classes, splitting,
// coalescing back to the maximal block, exhaustion behaviour, metadata
// integrity, and concurrent churn.
#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "lfll/memory/buddy_allocator.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

TEST(Buddy, StartsAsOneMaximalBlock) {
    buddy_allocator a(1 << 16, 64);
    EXPECT_EQ(a.total_bytes(), std::size_t{1} << 16);
    EXPECT_EQ(a.min_block(), 64u);
    EXPECT_EQ(a.free_bytes(), std::size_t{1} << 16);
    EXPECT_EQ(a.largest_free_block(), std::size_t{1} << 16);
}

TEST(Buddy, RoundsConstructionParameters) {
    buddy_allocator a(100000, 48);  // -> 65536 arena, 64-byte min block
    EXPECT_EQ(a.total_bytes(), 65536u);
    EXPECT_EQ(a.min_block(), 64u);
}

TEST(Buddy, AllocateSplitsAndTracksFreeBytes) {
    buddy_allocator a(1 << 12, 64);  // 4 KiB
    void* p = a.allocate(64);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(a.free_bytes(), (std::size_t{1} << 12) - 64);
    // Splitting 4K -> 2K + 1K + 512 + ... + 64 + [64]: largest free is 2K.
    EXPECT_EQ(a.largest_free_block(), 2048u);
    a.deallocate(p);
    a.coalesce();
    EXPECT_EQ(a.largest_free_block(), std::size_t{1} << 12);
    EXPECT_EQ(a.free_bytes(), std::size_t{1} << 12);
}

TEST(Buddy, SizesRoundUpToPowerOfTwoBlocks) {
    buddy_allocator a(1 << 14, 64);
    void* p = a.allocate(65);  // needs a 128-byte block
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(a.free_bytes(), (std::size_t{1} << 14) - 128);
    a.deallocate(p);
}

TEST(Buddy, BlocksAreDisjointAndWritable) {
    buddy_allocator a(1 << 14, 64);
    std::vector<void*> blocks;
    for (int i = 0; i < 64; ++i) {
        void* p = a.allocate(200);  // 256-byte blocks; 64 fit exactly
        ASSERT_NE(p, nullptr) << "allocation " << i;
        std::memset(p, i, 200);
        blocks.push_back(p);
    }
    EXPECT_EQ(a.allocate(200), nullptr);  // exhausted
    for (int i = 0; i < 64; ++i) {
        // No overlap: the pattern each block was filled with survived.
        EXPECT_EQ(static_cast<unsigned char*>(blocks[i])[0], i);
        EXPECT_EQ(static_cast<unsigned char*>(blocks[i])[199], i);
        a.deallocate(blocks[i]);
    }
    a.coalesce();
    EXPECT_EQ(a.largest_free_block(), std::size_t{1} << 14);
}

TEST(Buddy, ZeroAndOversizeRequestsFail) {
    buddy_allocator a(1 << 12, 64);
    EXPECT_EQ(a.allocate(0), nullptr);
    EXPECT_EQ(a.allocate((1 << 12) + 1), nullptr);
    EXPECT_NE(a.allocate(1 << 12), nullptr);  // exactly the arena is fine
}

TEST(Buddy, CoalescingEnablesLargeAllocationAfterFragmentation) {
    buddy_allocator a(1 << 12, 64);
    std::vector<void*> small;
    for (int i = 0; i < 64; ++i) {
        void* p = a.allocate(64);
        ASSERT_NE(p, nullptr);
        small.push_back(p);
    }
    for (void* p : small) a.deallocate(p);
    // All bytes are free but fragmented into 64-byte blocks; a big
    // allocation must succeed via the opportunistic coalesce inside
    // allocate().
    void* big = a.allocate(1 << 12);
    EXPECT_NE(big, nullptr);
    a.deallocate(big);
}

TEST(Buddy, MixedSizesRoundTrip) {
    buddy_allocator a(1 << 16, 64);
    xorshift64 rng(3);
    std::vector<std::pair<void*, std::size_t>> live;
    for (int i = 0; i < 2000; ++i) {
        if (live.size() < 20 && rng.next() % 2 == 0) {
            const std::size_t sz = 64 + rng.next_below(2000);
            void* p = a.allocate(sz);
            if (p != nullptr) {
                std::memset(p, 0x5a, sz);
                live.emplace_back(p, sz);
            }
        } else if (!live.empty()) {
            const std::size_t pick = rng.next_below(live.size());
            // Contents must be intact at free time.
            EXPECT_EQ(static_cast<unsigned char*>(live[pick].first)[live[pick].second - 1], 0x5a);
            a.deallocate(live[pick].first);
            live[pick] = live.back();
            live.pop_back();
        }
    }
    for (auto& [p, sz] : live) a.deallocate(p);
    a.coalesce();
    EXPECT_EQ(a.free_bytes(), a.total_bytes());
    EXPECT_EQ(a.largest_free_block(), a.total_bytes());
}

TEST(Buddy, ConcurrentChurnPreservesDisjointness) {
    buddy_allocator a(1 << 18, 64);
    constexpr int kThreads = 6;
    std::atomic<int> overlaps{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0x9999 + static_cast<std::uint64_t>(t));
            std::vector<std::pair<unsigned char*, std::size_t>> live;
            for (int i = 0; i < scaled(3000); ++i) {
                if (live.size() < 8 && rng.next() % 2 == 0) {
                    const std::size_t sz = 64 + rng.next_below(500);
                    auto* p = static_cast<unsigned char*>(a.allocate(sz));
                    if (p != nullptr) {
                        std::memset(p, t + 1, sz);
                        live.emplace_back(p, sz);
                    }
                } else if (!live.empty()) {
                    auto [p, sz] = live.back();
                    live.pop_back();
                    // If another thread got an overlapping block, our fill
                    // pattern is gone.
                    if (p[0] != t + 1 || p[sz - 1] != t + 1) overlaps.fetch_add(1);
                    a.deallocate(p);
                }
            }
            for (auto& [p, sz] : live) a.deallocate(p);
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(overlaps.load(), 0);
    a.coalesce();
    EXPECT_EQ(a.free_bytes(), a.total_bytes());
    EXPECT_EQ(a.largest_free_block(), a.total_bytes());
}

TEST(Buddy, CoalesceIsIdempotent) {
    buddy_allocator a(1 << 12, 64);
    void* p = a.allocate(64);
    a.deallocate(p);
    a.coalesce();
    a.coalesce();
    a.coalesce();
    EXPECT_EQ(a.largest_free_block(), std::size_t{1} << 12);
    EXPECT_EQ(a.free_bytes(), a.total_bytes());
}

}  // namespace
