// The same structures, typed over all three memory-reclamation policies
// (§5 reference counting, hazard pointers, epochs). Every test body is
// policy-agnostic except where it asserts the policies' *different*
// observable guarantees: when a deleted node may be retired and when it
// may be recycled.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "lfll/adapters/valois_queue.hpp"
#include "lfll/core/audit.hpp"
#include "lfll/core/list.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/memory/policy.hpp"
#include "lfll/reclaim/epoch_policy.hpp"
#include "lfll/reclaim/hazard_policy.hpp"
#include "test_scale.hpp"

namespace {

using lfll_test::scaled;

template <typename Policy>
class PolicyMatrix : public ::testing::Test {};

class PolicyNames {
public:
    template <typename Policy>
    static std::string GetName(int) {
        return Policy::name;
    }
};

using AllPolicies =
    ::testing::Types<lfll::valois_refcount, lfll::hazard_policy, lfll::epoch_policy>;
TYPED_TEST_SUITE(PolicyMatrix, AllPolicies, PolicyNames);

template <typename Policy>
void fill(lfll::valois_list<int, Policy>& list, int lo, int hi) {
    typename lfll::valois_list<int, Policy>::cursor c(list);
    for (int i = hi; i >= lo; --i) {
        list.first(c);
        list.insert(c, i);
    }
}

TYPED_TEST(PolicyMatrix, ListCursorInsertTraverseDeleteAudits) {
    lfll::valois_list<int, TypeParam> list(64);
    fill(list, 1, 16);

    std::vector<int> seen;
    {
        typename lfll::valois_list<int, TypeParam>::cursor c(list);
        while (!c.at_end()) {
            seen.push_back(*c);
            list.next(c);
        }
    }
    std::vector<int> want(16);
    std::iota(want.begin(), want.end(), 1);
    EXPECT_EQ(seen, want);

    // Delete every other cell from the front.
    for (int i = 0; i < 8; ++i) {
        typename lfll::valois_list<int, TypeParam>::cursor c(list);
        list.next(c);
        ASSERT_TRUE(list.try_delete(c));
    }
    EXPECT_EQ(list.size_slow(), 8u);

    list.pool().drain_retired();
    EXPECT_EQ(list.pool().retired_count(), 0u);
    auto report = lfll::audit_list(list);
    EXPECT_TRUE(report.ok) << report.error;
}

TYPED_TEST(PolicyMatrix, SortedMapSingleThreadedSemantics) {
    lfll::sorted_list_map<int, int, std::less<int>, TypeParam> map(256);
    for (int i = 0; i < 64; ++i) EXPECT_TRUE(map.insert(i, i * 10));
    for (int i = 0; i < 64; ++i) EXPECT_FALSE(map.insert(i, -1));
    for (int i = 0; i < 64; ++i) {
        auto v = map.find(i);
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i * 10);
    }
    for (int i = 0; i < 64; i += 2) EXPECT_TRUE(map.erase(i));
    for (int i = 0; i < 64; ++i) EXPECT_EQ(map.contains(i), i % 2 == 1);
    EXPECT_EQ(map.size_slow(), 32u);

    map.list().pool().drain_retired();
    auto report = lfll::audit_list(map.list());
    EXPECT_TRUE(report.ok) << report.error;
}

TYPED_TEST(PolicyMatrix, SortedMapConcurrentChurnStaysConsistent) {
    constexpr int kKeys = 64;
    lfll::sorted_list_map<int, int, std::less<int>, TypeParam> map(4096);
    const int n_threads = 4;
    const int ops = scaled(4000);

    std::vector<std::thread> threads;
    for (int t = 0; t < n_threads; ++t) {
        threads.emplace_back([&, t] {
            unsigned state = 0x9e3779b9u * static_cast<unsigned>(t + 1);
            for (int i = 0; i < ops; ++i) {
                state = state * 1664525u + 1013904223u;
                const int key = static_cast<int>(state >> 8) % kKeys;
                switch (state % 3u) {
                    case 0: map.insert(key, key); break;
                    case 1: map.erase(key); break;
                    default: {
                        auto v = map.find(key);
                        if (v.has_value()) {
                            EXPECT_EQ(*v, key);
                        }
                        break;
                    }
                }
            }
        });
    }
    for (auto& th : threads) th.join();

    // Quiescent: retire everything outstanding and audit the full pool.
    map.list().pool().drain_retired();
    EXPECT_EQ(map.list().pool().retired_count(), 0u);
    auto report = lfll::audit_list(map.list());
    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_LE(map.size_slow(), static_cast<std::size_t>(kKeys));
}

TYPED_TEST(PolicyMatrix, ValoisQueueMpmcConservesElements) {
    lfll::valois_queue<int, TypeParam> q(4096);
    const int n_producers = 2;
    const int n_consumers = 2;
    const int per_producer = scaled(5000);

    std::atomic<long long> consumed_sum{0};
    std::atomic<int> consumed_count{0};
    std::atomic<bool> done{false};

    std::vector<std::thread> threads;
    for (int p = 0; p < n_producers; ++p) {
        threads.emplace_back([&, p] {
            for (int i = 0; i < per_producer; ++i) q.enqueue(p * per_producer + i);
        });
    }
    for (int c = 0; c < n_consumers; ++c) {
        threads.emplace_back([&] {
            for (;;) {
                auto v = q.dequeue();
                if (v.has_value()) {
                    consumed_sum.fetch_add(*v, std::memory_order_relaxed);
                    consumed_count.fetch_add(1, std::memory_order_relaxed);
                } else if (done.load(std::memory_order_acquire)) {
                    // The empty result above was observed *before* the
                    // acquire of `done`, so it is not ordered after the
                    // producers' enqueues. Re-check once: this dequeue
                    // happens-after every enqueue, so empty now means
                    // empty for real (must consume, not discard).
                    auto v2 = q.dequeue();
                    if (!v2.has_value()) return;
                    consumed_sum.fetch_add(*v2, std::memory_order_relaxed);
                    consumed_count.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (int p = 0; p < n_producers; ++p) threads[static_cast<std::size_t>(p)].join();
    done.store(true, std::memory_order_release);
    for (int c = 0; c < n_consumers; ++c) {
        threads[static_cast<std::size_t>(n_producers + c)].join();
    }

    const int total = n_producers * per_producer;
    EXPECT_EQ(consumed_count.load(), total);
    long long want = 0;
    for (int p = 0; p < n_producers; ++p)
        for (int i = 0; i < per_producer; ++i) want += p * per_producer + i;
    EXPECT_EQ(consumed_sum.load(), want);

    q.pool().drain_retired();
    EXPECT_EQ(q.pool().retired_count(), 0u);
}

// The safety property the policy layer exists for: a node deleted from
// the list while a cursor still references it must not be recycled until
// that cursor lets go — via the count word under the counted policies,
// via the guard's grace period under epochs.
TYPED_TEST(PolicyMatrix, DeletedNodeNotRecycledWhileCursorHeld) {
    using list_t = lfll::valois_list<int, TypeParam>;
    list_t list(32);
    fill(list, 1, 4);

    typename list_t::cursor held(list);  // parked on cell 1, guard engaged
    auto* victim = held.target();
    ASSERT_NE(victim, nullptr);
    ASSERT_EQ(*held, 1);

    {
        typename list_t::cursor deleter(list);
        ASSERT_TRUE(list.try_delete(deleter));  // unlinks cell 1
    }

    if (TypeParam::counted_traversal) {
        // The cursor's counted reference blocks the VICTIM's retirement
        // outright. The aux node compacted away by the deletion carries
        // no cursor pin (pre_aux is an unreferenced hint), so once the
        // traversal decrements flush it may legitimately sit on the
        // retire list under hazard — but never more than that one aux.
        list.pool().flush_deferred_releases();
        EXPECT_LE(list.pool().retired_count(), 1u);
    } else {
        // Epoch: the node retires immediately but is banked, and the
        // cursor's pin keeps its bucket from being freed.
        EXPECT_GE(list.pool().retired_count(), 1u);
        list.pool().drain_retired();  // bounded; must NOT reclaim under our pin
        EXPECT_GE(list.pool().retired_count(), 1u);
    }

    // Cell persistence (§2.2): the deleted cell stays intact while held.
    EXPECT_EQ(held.target(), victim);
    EXPECT_TRUE(victim->is_cell());
    EXPECT_EQ(*held, 1);
    EXPECT_TRUE(victim->is_deleted());

    held.reset();  // drop the references and the guard
    list.pool().drain_retired();
    EXPECT_EQ(list.pool().retired_count(), 0u);

    // The slot really is reusable now: churn through the pool and audit.
    for (int round = 0; round < 3; ++round) {
        fill(list, 100 + round, 120 + round);
        for (int i = 0; i < 21; ++i) {
            typename list_t::cursor c(list);
            ASSERT_TRUE(list.try_delete(c));
        }
    }
    list.pool().drain_retired();
    auto report = lfll::audit_list(list);
    EXPECT_TRUE(report.ok) << report.error;
}

// Guards are reentrant per (thread, domain): nesting cursor guards and
// copying cursors must balance enter/leave exactly (a leak here would
// wedge epoch advancement and show up as unreclaimable nodes).
TYPED_TEST(PolicyMatrix, NestedAndCopiedGuardsBalance) {
    using list_t = lfll::valois_list<int, TypeParam>;
    list_t list(32);
    fill(list, 1, 8);

    {
        typename list_t::cursor outer(list);
        typename list_t::cursor inner(list);
        list.next(inner);
        typename list_t::cursor copied(inner);
        EXPECT_EQ(*copied, *inner);
        typename list_t::cursor moved(std::move(copied));
        EXPECT_EQ(*moved, 2);
    }

    // All guards are gone: deletions now must become reclaimable.
    for (int i = 0; i < 8; ++i) {
        typename list_t::cursor c(list);
        ASSERT_TRUE(list.try_delete(c));
    }
    list.pool().drain_retired();
    EXPECT_EQ(list.pool().retired_count(), 0u);
    auto report = lfll::audit_list(list);
    EXPECT_TRUE(report.ok) << report.error;
}

}  // namespace
