// Test-size scaling. ThreadSanitizer costs 5-20x on CPU-bound code and
// serializes far more on a single-core host (spinning waiters burn whole
// quanta), so the heavy stress loops shrink under TSan: the interleaving
// coverage per operation is *higher* there (TSan's scheduler shaking),
// which more than compensates for the smaller op counts.
#pragma once

namespace lfll_test {

#if !defined(LFLL_TEST_SCALE_TSAN)
#if defined(__SANITIZE_THREAD__)
#define LFLL_TEST_SCALE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define LFLL_TEST_SCALE_TSAN 1
#endif
#endif
#endif

#if defined(LFLL_TEST_SCALE_TSAN)
inline constexpr int scale_divisor = 20;
#else
inline constexpr int scale_divisor = 1;
#endif

constexpr int scaled(int n) {
    const int s = n / scale_divisor;
    return s > 0 ? s : 1;
}

/// As scaled(), but never below `floor` (seed sweeps want a useful
/// minimum breadth even under TSan).
constexpr int scaled_min(int n, int floor) {
    const int s = scaled(n);
    return s > floor ? s : floor;
}

}  // namespace lfll_test
