// Chaos stress: the same invariant-checked workloads as the normal stress
// suite, but compiled with LFLL_SCHED_CHAOS so every SafeRead/Release/CAS
// site may yield the CPU. On a one-core machine this forces context
// switches at exactly the algorithmically sensitive instants (between a
// SafeRead's read and increment, between a swing's speculation and its
// CAS), exploring orders of magnitude more interleavings per opcount than
// wall-clock preemption alone.
#define LFLL_SCHED_CHAOS 1

#include <gtest/gtest.h>

#include "test_scale.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "lfll/adapters/treiber_stack.hpp"
#include "lfll/adapters/valois_queue.hpp"
#include "lfll/core/audit.hpp"
#include "lfll/dict/skip_list.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;
using lfll_test::scaled;

TEST(ChaosStress, SortedMapHotKeys) {
    sorted_list_map<int, int> map(256);
    constexpr int kThreads = 8;
    constexpr int kKeys = 4;  // everything fights over four cells
    const int kOps = scaled(2000);
    std::vector<std::vector<long>> ins(kThreads, std::vector<long>(kKeys, 0));
    std::vector<std::vector<long>> del(kThreads, std::vector<long>(kKeys, 0));
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0xc4405 + static_cast<std::uint64_t>(t) * 13);
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < kOps; ++i) {
                const int k = static_cast<int>(rng.next_below(kKeys));
                if (rng.next() % 2 == 0) {
                    if (map.insert(k, k)) ins[t][k]++;
                } else {
                    if (map.erase(k)) del[t][k]++;
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();

    for (int k = 0; k < kKeys; ++k) {
        long balance = 0;
        for (int t = 0; t < kThreads; ++t) balance += ins[t][k] - del[t][k];
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(balance == 1, map.contains(k)) << "key " << k;
    }
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.aux_chains, 0u);
}

TEST(ChaosStress, AdjacentDeleteStorm) {
    // The Fig. 3 scenario (adjacent deletions) under chaos: threads
    // repeatedly insert and delete neighbouring keys so back_link walks
    // and aux-chain compaction constantly overlap.
    sorted_list_map<int, int> map(256);
    constexpr int kThreads = 6;
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            // Each thread owns two adjacent keys and churns them, so every
            // deletion's neighbourhood overlaps another thread's.
            const int base = t;  // keys t and t+1 overlap thread t+1's pair
            for (int i = 0; i < 1000; ++i) {
                map.insert(base, 0);
                map.insert(base + 1, 0);
                map.erase(base);
                map.erase(base + 1);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();

    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.aux_chains, 0u) << "aux chain survived quiescence";
}

TEST(ChaosStress, PoolChurnTinyPool) {
    // Maximum ABA pressure on the free list: an 8-node pool shared by 8
    // threads with yields inside SafeRead's window.
    node_pool<list_node<int>> pool(8);
    std::vector<std::thread> ts;
    std::atomic<bool> corrupted{false};
    for (int t = 0; t < 8; ++t) {
        ts.emplace_back([&, t] {
            for (int i = 0; i < 800; ++i) {
                auto* n = pool.alloc();
                n->construct_cell(t * 10000 + i);
                if (n->value() != t * 10000 + i) corrupted.store(true);
                n->on_reclaim();
                pool.release(n);
            }
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_FALSE(corrupted.load());
    EXPECT_EQ(pool.free_count(), pool.capacity());
}

TEST(ChaosStress, QueueMpmc) {
    valois_queue<long> q(64);
    constexpr int kProducers = 4;
    const int kPerProducer = scaled(1200);
    std::atomic<long> sum{0};
    std::atomic<long> count{0};
    std::atomic<bool> producing{true};
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (long i = 0; i < kPerProducer; ++i) q.enqueue(p * kPerProducer + i);
        });
    }
    for (int c = 0; c < 3; ++c) {
        threads.emplace_back([&] {
            for (;;) {
                auto v = q.dequeue();
                if (v.has_value()) {
                    sum.fetch_add(*v);
                    count.fetch_add(1);
                } else if (!producing.load(std::memory_order_acquire)) {
                    // Re-check AND consume: discarding a successful pop
                    // here would lose an element (a bug this suite once
                    // had, caught by TSan's scheduler shaking).
                    auto v2 = q.dequeue();
                    if (!v2.has_value()) return;
                    sum.fetch_add(*v2);
                    count.fetch_add(1);
                }
            }
        });
    }
    for (int p = 0; p < kProducers; ++p) threads[p].join();
    producing.store(false, std::memory_order_release);
    for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
    while (auto v = q.dequeue()) {
        sum.fetch_add(*v);
        count.fetch_add(1);
    }
    const long n = static_cast<long>(kProducers) * kPerProducer;
    EXPECT_EQ(count.load(), n);
    EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(ChaosStress, TreiberStackAbaWindow) {
    // The §5.1 ABA scenario with a yield planted exactly inside pop's
    // read-next-then-CAS window (via node_pool's chaos points): a tiny
    // pool maximizes same-address recycling.
    treiber_stack<long> s(4);
    constexpr int kThreads = 6;
    std::atomic<long> pushes{0}, pops{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0x46a + static_cast<std::uint64_t>(t));
            for (int i = 0; i < 1500; ++i) {
                if (rng.next() % 2 == 0) {
                    s.push(t);
                    pushes.fetch_add(1);
                } else if (s.pop().has_value()) {
                    pops.fetch_add(1);
                }
            }
        });
    }
    for (auto& th : ts) th.join();
    long remaining = 0;
    while (s.pop().has_value()) ++remaining;
    EXPECT_EQ(remaining, pushes.load() - pops.load());
    EXPECT_EQ(s.pool().free_count(), s.pool().capacity());
}

TEST(ChaosStress, CompactionActuallyFires) {
    // Under chaos-forced overlap, deleters must leave transient aux
    // chains that Update/TryDelete then compact: the instrumentation has
    // to show both mechanisms firing (a run where they never fire would
    // mean the chaos isn't reaching the §3 machinery).
    instrument::reset();
    sorted_list_map<int, int> map(256);
    constexpr int kThreads = 6;
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < 800; ++i) {
                map.insert(t, 0);
                map.insert(t + 1, 0);
                map.erase(t);
                map.erase(t + 1);
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();
    const auto c = instrument::snapshot();
    EXPECT_GT(c.aux_hops, 0u) << "no auxiliary chain was ever traversed";
    EXPECT_GT(c.aux_compactions, 0u) << "no chain was ever compacted";
    EXPECT_GT(c.cas_failures, 0u) << "no CAS ever lost a race";
    auto r = audit_list(map.list());
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.aux_chains, 0u);
}

TEST(ChaosStress, SkipListChurn) {
    skip_list_map<int, int> map(2048, 6);
    constexpr int kThreads = 6;
    std::atomic<bool> go{false};
    std::vector<std::vector<long>> ins(kThreads, std::vector<long>(16, 0));
    std::vector<std::vector<long>> del(kThreads, std::vector<long>(16, 0));
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(0x5417 + static_cast<std::uint64_t>(t));
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < 800; ++i) {
                const int k = static_cast<int>(rng.next_below(16));
                if (rng.next() % 2 == 0) {
                    if (map.insert(k, k)) ins[t][k]++;
                } else {
                    if (map.erase(k)) del[t][k]++;
                }
            }
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();

    for (int k = 0; k < 16; ++k) {
        long balance = 0;
        for (int t = 0; t < kThreads; ++t) balance += ins[t][k] - del[t][k];
        ASSERT_GE(balance, 0);
        ASSERT_LE(balance, 1);
        EXPECT_EQ(balance == 1, map.contains(k)) << "key " << k;
    }
}

}  // namespace
