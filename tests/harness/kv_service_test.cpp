// KV service harness: request-mix presets, per-shard telemetry, and the
// growth-under-load report the E10 acceptance relies on.
#include <gtest/gtest.h>

#include <string>

#include "lfll/dict/hash_map.hpp"
#include "lfll/dict/sharded_kv.hpp"
#include "lfll/harness/kv_service.hpp"
#include "lfll/telemetry/metrics.hpp"
#include "test_scale.hpp"

namespace {

using namespace lfll;
using harness::kv_report;
using harness::kv_service_config;
using harness::request_mix;
using harness::run_kv_service;

TEST(RequestMix, PresetsCoverTheYcsbVocabulary) {
    std::size_t n = 0;
    const request_mix* all = request_mix::all(n);
    ASSERT_EQ(n, 5u);
    EXPECT_STREQ(all[0].name, "uniform");
    EXPECT_FALSE(all[0].zipfian());
    EXPECT_STREQ(all[1].name, "zipf99");
    EXPECT_TRUE(all[1].zipfian());
    EXPECT_DOUBLE_EQ(all[1].zipf_theta, 0.99);
    EXPECT_EQ(all[2].ops.find_pct, 90);
    EXPECT_STREQ(all[3].name, "update_heavy");  // YCSB-A: 50/50/0, no erase
    EXPECT_EQ(all[3].ops.find_pct, 50);
    EXPECT_EQ(all[3].ops.erase_pct, 0);
    EXPECT_EQ(all[4].ops.find_pct, 0);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(all[i].ops.find_pct + all[i].ops.insert_pct + all[i].ops.erase_pct,
                  100)
            << all[i].name;
    }
}

TEST(KvService, ReportsGrowthUnderZipfLoad) {
    split_ordered_config cfg;
    cfg.initial_buckets = 4;
    cfg.capacity_hint = 64;
    cfg.max_load = 2.0;
    cfg.resize_check_period = 1;
    auto store = make_sharded_kv<int, int>(2, cfg);

    kv_service_config sc;
    sc.clients = 4;
    sc.millis = lfll_test::scaled_min(150, 60);
    sc.key_range = 1 << 14;
    sc.mix = request_mix{"grow", {10, 80, 10}, 0.99};
    const kv_report rep = run_kv_service(store, sc);

    EXPECT_GT(rep.run.total_ops, 0u);
    EXPECT_EQ(rep.shards, 2u);
    EXPECT_EQ(rep.buckets_before, 8u);  // 2 shards x 4 buckets
    // Insert-heavy Zipf over 16k keys must trigger splits in-flight.
    EXPECT_GT(rep.grows, 0u);
    EXPECT_GT(rep.buckets_after, rep.buckets_before);
    EXPECT_GT(rep.dummies, 0u);
    EXPECT_EQ(rep.size_after, store.size_slow());
    // Latency sampling produced a usable reservoir.
    EXPECT_GT(rep.latency_ns.n, 0u);
    EXPECT_GE(rep.latency_ns.p99, rep.latency_ns.p50);
}

TEST(KvService, PublishesPerShardGauges) {
    split_ordered_config cfg;
    cfg.initial_buckets = 8;
    auto store = make_sharded_kv<int, int>(2, cfg);
    kv_service_config sc;
    sc.clients = 2;
    sc.millis = lfll_test::scaled_min(80, 40);
    sc.key_range = 1 << 12;
    sc.mix = request_mix::uniform();
    (void)run_kv_service(store, sc);

    auto& reg = telemetry::registry::global();
    for (std::size_t s = 0; s < 2; ++s) {
        const std::string label = "shard=\"" + std::to_string(s) + "\"";
        EXPECT_GT(reg.get_gauge("lfll_kv_shard_buckets", label).value(), 0)
            << "shard " << s;
        EXPECT_GT(reg.get_gauge("lfll_kv_shard_pool_capacity", label).value(), 0)
            << "shard " << s;
    }
}

TEST(KvService, FixedMapRunsUnderTheSameHarness) {
    // The fixed slab lacks grow_count/size_approx; stats degrade to zero
    // but the harness itself must run unchanged (A/B requirement).
    sharded_kv<hash_map<int, int>> store(2, [](std::size_t) {
        return std::make_unique<hash_map<int, int>>(64, 16);
    });
    kv_service_config sc;
    sc.clients = 2;
    sc.millis = lfll_test::scaled_min(80, 40);
    sc.key_range = 1 << 12;
    sc.mix = request_mix::read_heavy();
    const kv_report rep = run_kv_service(store, sc);
    EXPECT_GT(rep.run.total_ops, 0u);
    EXPECT_EQ(rep.grows, 0u);
    EXPECT_EQ(rep.buckets_after, 128u);  // 2 shards x 64 fixed buckets
}

}  // namespace
