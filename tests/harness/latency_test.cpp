// Latency sampler: sampling cadence, merge correctness, and plausible
// magnitudes.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "lfll/harness/latency.hpp"

namespace {

using namespace lfll::harness;

TEST(Latency, SamplesEveryNthOperation) {
    latency_sink sink;
    {
        latency_sampler s(sink, /*shift=*/2);  // every 4th
        for (int i = 0; i < 40; ++i) {
            auto g = s.measure();
        }
    }
    EXPECT_EQ(sink.sample_count(), 10u);
}

TEST(Latency, ShiftZeroSamplesEverything) {
    latency_sink sink;
    {
        latency_sampler s(sink, 0);
        for (int i = 0; i < 7; ++i) {
            auto g = s.measure();
        }
    }
    EXPECT_EQ(sink.sample_count(), 7u);
}

TEST(Latency, MeasuresPlausibleDurations) {
    latency_sink sink;
    {
        latency_sampler s(sink, 0);
        for (int i = 0; i < 5; ++i) {
            auto g = s.measure();
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    const summary sum = sink.summarize_ns();
    EXPECT_EQ(sum.n, 5u);
    EXPECT_GE(sum.min, 1.5e6);  // at least ~1.5ms
    EXPECT_LT(sum.min, 1e9);    // and not absurd
}

TEST(Latency, MergesAcrossThreads) {
    latency_sink sink;
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&] {
            latency_sampler s(sink, 1);  // every 2nd
            for (int i = 0; i < 100; ++i) {
                auto g = s.measure();
            }
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(sink.sample_count(), 4u * 50u);
}

TEST(Latency, ExplicitFlushThenMore) {
    latency_sink sink;
    latency_sampler s(sink, 0);
    {
        auto g = s.measure();
    }
    s.flush();
    EXPECT_EQ(sink.sample_count(), 1u);
    {
        auto g = s.measure();
    }
    s.flush();
    EXPECT_EQ(sink.sample_count(), 2u);
}

}  // namespace
