// Latency sampler: sampling cadence, merge correctness, and plausible
// magnitudes.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "lfll/harness/latency.hpp"

namespace {

using namespace lfll::harness;

TEST(Latency, SamplesEveryNthOperation) {
    latency_sink sink;
    {
        latency_sampler s(sink, /*shift=*/2);  // every 4th
        for (int i = 0; i < 40; ++i) {
            auto g = s.measure();
        }
    }
    EXPECT_EQ(sink.sample_count(), 10u);
}

TEST(Latency, ShiftZeroSamplesEverything) {
    latency_sink sink;
    {
        latency_sampler s(sink, 0);
        for (int i = 0; i < 7; ++i) {
            auto g = s.measure();
        }
    }
    EXPECT_EQ(sink.sample_count(), 7u);
}

TEST(Latency, MeasuresPlausibleDurations) {
    latency_sink sink;
    {
        latency_sampler s(sink, 0);
        for (int i = 0; i < 5; ++i) {
            auto g = s.measure();
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
    }
    const summary sum = sink.summarize_ns();
    EXPECT_EQ(sum.n, 5u);
    EXPECT_GE(sum.min, 1.5e6);  // at least ~1.5ms
    EXPECT_LT(sum.min, 1e9);    // and not absurd
}

TEST(Latency, MergesAcrossThreads) {
    latency_sink sink;
    std::vector<std::thread> ts;
    for (int t = 0; t < 4; ++t) {
        ts.emplace_back([&] {
            latency_sampler s(sink, 1);  // every 2nd
            for (int i = 0; i < 100; ++i) {
                auto g = s.measure();
            }
        });
    }
    for (auto& th : ts) th.join();
    EXPECT_EQ(sink.sample_count(), 4u * 50u);
}

TEST(Latency, ReservoirCapBoundsRetention) {
    latency_sink sink(/*reservoir_cap=*/64);
    std::vector<double> batch(1000, 5.0);
    sink.merge(std::move(batch));
    EXPECT_EQ(sink.sample_count(), 64u);
    EXPECT_EQ(sink.observed(), 1000u);

    std::vector<double> more(500, 7.0);
    sink.merge(std::move(more));
    EXPECT_EQ(sink.sample_count(), 64u);
    EXPECT_EQ(sink.observed(), 1500u);
}

TEST(Latency, ReservoirReportsRetainedFraction) {
    latency_sink sink(/*reservoir_cap=*/100);
    std::vector<double> batch(400, 3.0);
    sink.merge(std::move(batch));
    const summary s = sink.summarize_ns();
    EXPECT_EQ(s.n, 100u);
    EXPECT_DOUBLE_EQ(s.fraction, 0.25);
    // All observations were identical, so subsampling must not change the
    // order statistics.
    EXPECT_DOUBLE_EQ(s.p50, 3.0);
    EXPECT_DOUBLE_EQ(s.max, 3.0);
}

TEST(Latency, FractionIsOneBelowCap) {
    latency_sink sink;  // default cap (1 << 18) far above 10 samples
    std::vector<double> batch(10, 1.0);
    sink.merge(std::move(batch));
    const summary s = sink.summarize_ns();
    EXPECT_EQ(s.n, 10u);
    EXPECT_DOUBLE_EQ(s.fraction, 1.0);
}

TEST(Latency, ReservoirKeepsLaterSamplesWithBoundedBias) {
    // After 10x-cap observations of a two-phase stream (first half 1.0,
    // second half 2.0), Algorithm R should retain a roughly even split —
    // a naive "keep first cap" would retain only 1.0s.
    latency_sink sink(/*reservoir_cap=*/200);
    std::vector<double> first(1000, 1.0);
    std::vector<double> second(1000, 2.0);
    sink.merge(std::move(first));
    sink.merge(std::move(second));
    const summary s = sink.summarize_ns();
    EXPECT_EQ(s.n, 200u);
    // mean in (1,2), well away from either pure phase.
    EXPECT_GT(s.mean, 1.2);
    EXPECT_LT(s.mean, 1.8);
}

TEST(Latency, ExplicitFlushThenMore) {
    latency_sink sink;
    latency_sampler s(sink, 0);
    {
        auto g = s.measure();
    }
    s.flush();
    EXPECT_EQ(sink.sample_count(), 1u);
    {
        auto g = s.measure();
    }
    s.flush();
    EXPECT_EQ(sink.sample_count(), 2u);
}

}  // namespace
