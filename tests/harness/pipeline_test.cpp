// request_pipeline coverage: submit/complete correctness against an
// oracle, the inline-helping drain, ring backpressure under a tiny ring,
// executor-backstop progress for wait()-only owners, and drain stats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "lfll/dict/sharded_kv.hpp"
#include "lfll/dict/sorted_list_map.hpp"
#include "lfll/dict/split_ordered_map.hpp"
#include "lfll/harness/pipeline.hpp"
#include "lfll/primitives/rng.hpp"

namespace {

using namespace lfll;
using lfll::harness::pipeline_config;
using lfll::harness::request_pipeline;

using sorted_store = sharded_kv<sorted_list_map<int, int>>;

sorted_store make_store(std::size_t shards, std::size_t cap = 1024) {
    return sorted_store(shards, [cap](std::size_t) {
        return std::make_unique<sorted_list_map<int, int>>(cap);
    });
}

TEST(Pipeline, BlockingConveniencesMatchOracle) {
    sorted_store store = make_store(4);
    pipeline_config cfg;
    cfg.batch_max = 8;
    request_pipeline<sorted_store> pipe(store, cfg);
    std::map<int, int> oracle;
    xorshift64 rng(0xF00D);
    for (int i = 0; i < 2000; ++i) {
        const int k = static_cast<int>(rng.next_below(128));
        switch (rng.next_below(3)) {
            case 0: {
                const auto got = pipe.get(k);
                const auto it = oracle.find(k);
                if (it == oracle.end()) {
                    EXPECT_FALSE(got.has_value()) << "i=" << i;
                } else {
                    EXPECT_EQ(got, std::optional<int>(it->second)) << "i=" << i;
                }
                break;
            }
            case 1: {
                const bool ok = pipe.insert(k, 100 + k);
                EXPECT_EQ(ok, oracle.find(k) == oracle.end()) << "i=" << i;
                oracle.emplace(k, 100 + k);
                break;
            }
            default: {
                const bool ok = pipe.erase(k);
                EXPECT_EQ(ok, oracle.erase(k) > 0) << "i=" << i;
                break;
            }
        }
    }
    EXPECT_EQ(store.size_slow(), oracle.size());
    EXPECT_GE(pipe.requests_completed(), 2000u);
    EXPECT_GE(pipe.batches_drained(), 1u);
}

TEST(Pipeline, WindowedSubmitCompletesEverySlot) {
    // The kv_service pattern: submit a whole window (no executor wake),
    // then complete each slot — the client drains its own shards inline.
    sorted_store store = make_store(2);
    for (int k = 0; k < 64; ++k) store.insert(k, 500 + k);
    pipeline_config cfg;
    cfg.batch_max = 16;
    request_pipeline<sorted_store> pipe(store, cfg);
    using pipe_t = request_pipeline<sorted_store>;
    constexpr std::size_t kWindow = 24;
    std::vector<pipe_t::request> slots(kWindow);
    for (int round = 0; round < 50; ++round) {
        for (std::size_t w = 0; w < kWindow; ++w) {
            const int k = static_cast<int>((round * kWindow + w) % 64);
            pipe.submit(slots[w], batch_op_kind::get, k, 0, /*wake=*/false);
        }
        for (std::size_t w = 0; w < kWindow; ++w) {
            pipe.complete(slots[w]);
            ASSERT_TRUE(slots[w].ready());
            const int k = static_cast<int>((round * kWindow + w) % 64);
            ASSERT_TRUE(slots[w].result().ok) << "key " << k;
            EXPECT_EQ(slots[w].result().value, std::optional<int>(500 + k));
        }
    }
    EXPECT_EQ(pipe.requests_completed(), 50u * kWindow);
    // Windowed submission must actually coalesce: strictly fewer drains
    // than requests.
    EXPECT_LT(pipe.batches_drained(), pipe.requests_completed());
}

TEST(Pipeline, ExecutorBackstopServesWaitOnlyOwners) {
    // Owners that only wait() (never help) still complete: the woken
    // executor is responsible for every submitted request.
    sorted_store store = make_store(1);
    request_pipeline<sorted_store> pipe(store);
    using pipe_t = request_pipeline<sorted_store>;
    std::vector<pipe_t::request> slots(256);
    for (int i = 0; i < 256; ++i) {
        pipe.submit(slots[i], batch_op_kind::insert, i, 2 * i);  // wake=true
    }
    for (int i = 0; i < 256; ++i) {
        slots[i].wait();
        EXPECT_TRUE(slots[i].result().ok) << i;
    }
    EXPECT_EQ(store.size_slow(), 256u);
}

TEST(Pipeline, TinyRingBackpressuresWithoutLoss) {
    // Ring of 8 slots, window of 64: submit must backpressure (spin) yet
    // every request completes exactly once.
    sorted_store store = make_store(1);
    pipeline_config cfg;
    cfg.ring_capacity = 8;
    cfg.batch_max = 4;
    request_pipeline<sorted_store> pipe(store, cfg);
    using pipe_t = request_pipeline<sorted_store>;
    std::atomic<int> inserted{0};
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&pipe, &inserted, t] {
            std::vector<pipe_t::request> slots(64);
            for (int i = 0; i < 64; ++i) {
                pipe.submit(slots[i], batch_op_kind::insert, t * 64 + i, i);
            }
            for (int i = 0; i < 64; ++i) {
                pipe.complete(slots[i]);
                if (slots[i].result().ok) inserted.fetch_add(1);
            }
        });
    }
    for (auto& c : clients) c.join();
    EXPECT_EQ(inserted.load(), 4 * 64);
    EXPECT_EQ(store.size_slow(), 4u * 64u);
}

TEST(Pipeline, ConcurrentMixedClientsStayLinearizablePerKey) {
    // 2 helping clients + 2 wait-only clients over a shared key range;
    // per-key insert/erase alternation means the final membership must
    // match the per-key op balance each client observed.
    using so_store = sharded_kv<split_ordered_map<int, int>>;
    split_ordered_config cfg;
    cfg.initial_buckets = 4;
    cfg.capacity_hint = 1024;
    so_store store = make_sharded_kv<int, int>(2, cfg);
    request_pipeline<so_store> pipe(store);
    using pipe_t = request_pipeline<so_store>;
    std::atomic<std::int64_t> balance{0};  // inserts-that-won minus erases-that-won
    std::vector<std::thread> clients;
    for (int t = 0; t < 4; ++t) {
        clients.emplace_back([&pipe, &balance, t] {
            const bool helper = t < 2;
            xorshift64 rng(0xC11E + t * 7919);
            pipe_t::request slot;
            std::int64_t local = 0;
            for (int i = 0; i < 1500; ++i) {
                const int k = static_cast<int>(rng.next_below(96));
                const bool ins = rng.next_below(2) == 0;
                pipe.submit(slot, ins ? batch_op_kind::insert : batch_op_kind::erase,
                            k, k, /*wake=*/!helper);
                if (helper) {
                    pipe.complete(slot);
                } else {
                    slot.wait();
                }
                if (slot.result().ok) local += ins ? 1 : -1;
            }
            balance.fetch_add(local);
        });
    }
    for (auto& c : clients) c.join();
    EXPECT_EQ(static_cast<std::int64_t>(store.size_slow()), balance.load())
        << "won inserts minus won erases must equal the live count";
}

}  // namespace
