// Benchmark harness: statistics, table formatting, the thread driver, and
// the instrumentation registry the experiments rely on.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <thread>

#include "lfll/harness/runner.hpp"
#include "lfll/harness/stats.hpp"
#include "lfll/harness/table.hpp"
#include "lfll/primitives/instrument.hpp"

namespace {

using namespace lfll;
using namespace lfll::harness;

TEST(Stats, SummaryOfKnownSamples) {
    auto s = summarize({1, 2, 3, 4, 5});
    EXPECT_DOUBLE_EQ(s.min, 1);
    EXPECT_DOUBLE_EQ(s.max, 5);
    EXPECT_DOUBLE_EQ(s.mean, 3);
    EXPECT_DOUBLE_EQ(s.p50, 3);
    EXPECT_NEAR(s.stddev, 1.5811, 1e-3);
    EXPECT_EQ(s.n, 5u);
}

TEST(Stats, EmptyAndSingleton) {
    EXPECT_EQ(summarize({}).n, 0u);
    auto s = summarize({7.0});
    EXPECT_DOUBLE_EQ(s.mean, 7.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.p99, 7.0);
}

TEST(Stats, FmtSi) {
    EXPECT_EQ(fmt_si(950), "950");
    EXPECT_EQ(fmt_si(1500), "1.50k");
    EXPECT_EQ(fmt_si(1234567), "1.23M");
    EXPECT_EQ(fmt_si(25e9), "25.0G");
}

TEST(Table, AlignsColumns) {
    table t({"name", "v"});
    t.add_row({"a", "1"});
    t.add_row({"longer", "22"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Both data lines start columns at the same offset.
    EXPECT_NE(out.find("a       1"), std::string::npos);
}

TEST(Table, CsvOutput) {
    table t({"a", "b"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, ShortRowsArePadded) {
    table t({"a", "b", "c"});
    t.add_row({"only"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "a,b,c\nonly,,\n");
}

TEST(Runner, RunsAllThreadsAndCounts) {
    auto res = run_timed(3, 50, [&](int, std::atomic<bool>& stop) {
        std::uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) ++n;
        return n;
    });
    EXPECT_EQ(res.per_thread_ops.size(), 3u);
    for (auto ops : res.per_thread_ops) EXPECT_GT(ops, 0u);
    EXPECT_GE(res.seconds, 0.045);
    EXPECT_GT(res.ops_per_sec, 0.0);
    EXPECT_EQ(res.total_ops,
              res.per_thread_ops[0] + res.per_thread_ops[1] + res.per_thread_ops[2]);
}

TEST(Runner, CapturesInstrumentDelta) {
    auto res = run_timed(2, 30, [&](int, std::atomic<bool>& stop) {
        std::uint64_t n = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            instrument::tls().aux_hops++;
            ++n;
        }
        return n;
    });
    EXPECT_EQ(res.counters.aux_hops, res.total_ops);
    EXPECT_DOUBLE_EQ(res.per_op(res.counters.aux_hops), 1.0);
}

TEST(Instrument, SnapshotSumsLiveAndRetiredThreads) {
    instrument::reset();
    instrument::tls().cas_attempts += 5;
    std::thread t([] { instrument::tls().cas_attempts += 7; });
    t.join();  // folded into the retired total
    auto snap = instrument::snapshot();
    EXPECT_GE(snap.cas_attempts, 12u);
}

TEST(Instrument, ResetClearsEverything) {
    instrument::tls().safe_reads += 100;
    instrument::reset();
    // Other live test threads may be incrementing, but this thread's slot
    // and the retired pile were zeroed; our contribution is gone.
    auto snap = instrument::snapshot();
    EXPECT_LT(snap.safe_reads, 100u);
}

}  // namespace
