// lfll_top: live terminal view of an LFLL JSON-lines telemetry stream.
//
// Tails the file a jsonl exporter appends to (see telemetry/exporter.hpp)
// and redraws a per-metric table whenever a new snapshot line lands:
//
//     LFLL_TELEMETRY=jsonl:/tmp/m.jsonl ./build/tools/soak 600 &
//     ./build/tools/lfll_top /tmp/m.jsonl
//
// Counters (metrics ending in _total or _count) additionally show a
// per-second rate computed from the previous snapshot's value and the
// ts_ms delta. Modes:
//
//     lfll_top <file>                live view (ANSI redraw, ^C to quit)
//     lfll_top --once <file>         render the newest snapshot and exit
//     lfll_top --selftest            parse + render a built-in sample line
//
// The parser handles exactly the exporter's flat schema —
// {"ts_ms":N,"metrics":{"name{labels}":number,...}} — not general JSON.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <chrono>

namespace {

struct snapshot {
    std::uint64_t ts_ms = 0;
    std::map<std::string, double> metrics;
};

/// Parses a JSON string starting at s[i] == '"'; unescapes \" and \\.
/// Returns false on malformed input, else leaves i one past the closing
/// quote.
bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
    if (i >= s.size() || s[i] != '"') return false;
    out.clear();
    for (++i; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '"') {
            ++i;
            return true;
        }
        if (c == '\\') {
            if (++i >= s.size()) return false;
            out += s[i];
        } else {
            out += c;
        }
    }
    return false;
}

bool parse_number(const std::string& s, std::size_t& i, double& out) {
    char* end = nullptr;
    out = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) return false;
    i = static_cast<std::size_t>(end - s.c_str());
    return true;
}

/// Parses one exporter line. Tolerant of trailing whitespace, strict
/// about the schema otherwise.
bool parse_line(const std::string& line, snapshot& out) {
    const char* ts_tag = "{\"ts_ms\":";
    if (line.compare(0, std::strlen(ts_tag), ts_tag) != 0) return false;
    std::size_t i = std::strlen(ts_tag);
    double ts = 0;
    if (!parse_number(line, i, ts)) return false;
    out.ts_ms = static_cast<std::uint64_t>(ts);

    const char* m_tag = ",\"metrics\":{";
    if (line.compare(i, std::strlen(m_tag), m_tag) != 0) return false;
    i += std::strlen(m_tag);
    out.metrics.clear();
    if (i < line.size() && line[i] == '}') return true;  // empty registry
    for (;;) {
        std::string key;
        double value = 0;
        if (!parse_string(line, i, key)) return false;
        if (i >= line.size() || line[i] != ':') return false;
        ++i;
        if (!parse_number(line, i, value)) return false;
        out.metrics[key] = value;
        if (i >= line.size()) return false;
        if (line[i] == ',') {
            ++i;
            continue;
        }
        if (line[i] == '}') return true;
        return false;
    }
}

bool is_rate_metric(const std::string& key) {
    const auto brace = key.find('{');
    const std::string name = brace == std::string::npos ? key : key.substr(0, brace);
    auto ends_with = [&](const char* suf) {
        const std::size_t n = std::strlen(suf);
        return name.size() >= n && name.compare(name.size() - n, n, suf) == 0;
    };
    return ends_with("_total") || ends_with("_count");
}

/// Profiler panel: folds the rank-labelled hot-key gauges the sampled
/// profiler publishes (telemetry/profiler.hpp) into one table under the
/// metric list, so a live view answers "which keys hurt" directly.
void render_profiler_panel(const snapshot& cur) {
    const auto get = [&](const std::string& k) -> const double* {
        const auto it = cur.metrics.find(k);
        return it == cur.metrics.end() ? nullptr : &it->second;
    };
    const double* sampled = get("lfll_prof_sampled_ops_total");
    if (sampled == nullptr) return;  // profiler not in this stream
    const double* slow = get("lfll_prof_slow_ops_total");
    std::printf("\nprofiler: %.0f sampled, %.0f slow\n", *sampled,
                slow != nullptr ? *slow : 0.0);
    std::printf("%4s %20s %10s %14s %6s\n", "rank", "key", "hits", "cas_failures",
                "shard");
    for (int r = 0;; ++r) {
        const std::string label = "{rank=\"" + std::to_string(r) + "\"}";
        const double* key = get("lfll_prof_hot_key" + label);
        if (key == nullptr) break;
        if (*key < 0) continue;  // unused rank
        const double* hits = get("lfll_prof_hot_key_hits" + label);
        const double* fails = get("lfll_prof_hot_key_cas_failures" + label);
        const double* shard = get("lfll_prof_hot_key_shard" + label);
        char shard_s[16] = "-";
        if (shard != nullptr && *shard >= 0)
            std::snprintf(shard_s, sizeof shard_s, "%.0f", *shard);
        std::printf("%4d %20.0f %10.0f %14.0f %6s\n", r, *key,
                    hits != nullptr ? *hits : 0.0, fails != nullptr ? *fails : 0.0,
                    shard_s);
    }
}

/// Pipeline panel: folds the batched-request metrics (harness/pipeline.hpp)
/// into one line + a ring-occupancy strip, so a live view answers "is
/// batching actually coalescing, and which shard ring is backed up".
void render_pipeline_panel(const snapshot& cur) {
    const auto get = [&](const std::string& k) -> const double* {
        const auto it = cur.metrics.find(k);
        return it == cur.metrics.end() ? nullptr : &it->second;
    };
    const double* reqs = get("lfll_pipeline_requests_total");
    if (reqs == nullptr) return;  // no pipeline in this stream
    const double* batches = get("lfll_pipeline_batches_total");
    const double* waits = get("lfll_pipeline_drain_waits_total");
    const double* inl = get("lfll_pipeline_inline_drains_total");
    const double* p50 = get("lfll_pipeline_batch_size_p50");
    const double* p99 = get("lfll_pipeline_batch_size_p99");
    const double nb = batches != nullptr ? *batches : 0.0;
    std::printf(
        "\npipeline: %.0f requests / %.0f batches (avg %.2f, p50 %.0f, p99 "
        "%.0f), %.0f inline drains, %.0f executor waits\n",
        *reqs, nb, nb > 0 ? *reqs / nb : 0.0, p50 != nullptr ? *p50 : 0.0,
        p99 != nullptr ? *p99 : 0.0, inl != nullptr ? *inl : 0.0,
        waits != nullptr ? *waits : 0.0);
    bool header = false;
    for (int s = 0;; ++s) {
        const double* occ =
            get("lfll_pipeline_ring_occupancy{shard=\"" + std::to_string(s) +
                "\"}");
        if (occ == nullptr) break;
        if (!header) {
            std::printf("%6s %10s\n", "shard", "ring_occ");
            header = true;
        }
        std::printf("%6d %10.0f\n", s, *occ);
    }
}

void render(const snapshot& cur, const snapshot* prev, bool ansi) {
    if (ansi) std::fputs("\x1b[H\x1b[2J", stdout);
    std::printf("lfll_top — %zu metrics, ts_ms=%llu\n\n", cur.metrics.size(),
                static_cast<unsigned long long>(cur.ts_ms));
    std::printf("%-64s %16s %12s\n", "METRIC", "VALUE", "RATE/s");
    const double dt_s =
        (prev != nullptr && cur.ts_ms > prev->ts_ms)
            ? static_cast<double>(cur.ts_ms - prev->ts_ms) / 1000.0
            : 0.0;
    for (const auto& [key, value] : cur.metrics) {
        char val[32];
        if (value == static_cast<double>(static_cast<long long>(value))) {
            std::snprintf(val, sizeof val, "%lld", static_cast<long long>(value));
        } else {
            std::snprintf(val, sizeof val, "%.3f", value);
        }
        char rate[32] = "";
        if (dt_s > 0 && is_rate_metric(key)) {
            const auto it = prev->metrics.find(key);
            if (it != prev->metrics.end()) {
                std::snprintf(rate, sizeof rate, "%.0f", (value - it->second) / dt_s);
            }
        }
        std::printf("%-64s %16s %12s\n", key.c_str(), val, rate);
    }
    render_profiler_panel(cur);
    render_pipeline_panel(cur);
    std::fflush(stdout);
}

/// Reads the last parseable line of `path` into `out`; false if none.
bool read_last_snapshot(const char* path, snapshot& out) {
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) return false;
    bool got = false;
    std::string line;
    char buf[1 << 16];
    while (std::fgets(buf, sizeof buf, f) != nullptr) {
        line = buf;
        snapshot s;
        if (parse_line(line, s)) {
            out = std::move(s);
            got = true;
        }
    }
    std::fclose(f);
    return got;
}

int run_selftest() {
    const std::string sample =
        "{\"ts_ms\":1754265600000,\"metrics\":{"
        "\"lfll_runs_total\":3,"
        "\"lfll_retired_backlog{policy=\\\"epoch\\\"}\":128,"
        "\"lfll_op_latency_ns_p99\":2048.5}}";
    snapshot s;
    if (!parse_line(sample, s) || s.metrics.size() != 3 ||
        s.metrics.at("lfll_retired_backlog{policy=\"epoch\"}") != 128) {
        std::fprintf(stderr, "lfll_top: selftest parse failed\n");
        return 1;
    }
    render(s, nullptr, /*ansi=*/false);
    std::puts("lfll_top: selftest ok");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    bool once = false;
    const char* path = nullptr;
    long interval_ms = 500;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--selftest") == 0) return run_selftest();
        if (std::strcmp(argv[i], "--once") == 0) {
            once = true;
        } else if (std::strcmp(argv[i], "--interval") == 0 && i + 1 < argc) {
            interval_ms = std::atol(argv[++i]);
            if (interval_ms <= 0) interval_ms = 500;
        } else {
            path = argv[i];
        }
    }
    if (path == nullptr) {
        std::fprintf(stderr,
                     "usage: lfll_top [--once] [--interval ms] <metrics.jsonl>\n"
                     "       lfll_top --selftest\n");
        return 2;
    }

    if (once) {
        snapshot s;
        if (!read_last_snapshot(path, s)) {
            std::fprintf(stderr, "lfll_top: no parseable snapshot in %s\n", path);
            return 1;
        }
        render(s, nullptr, /*ansi=*/false);
        return 0;
    }

    snapshot prev, cur;
    bool have_prev = false;
    for (;;) {
        if (read_last_snapshot(path, cur)) {
            if (!have_prev || cur.ts_ms != prev.ts_ms) {
                render(cur, have_prev ? &prev : nullptr, /*ansi=*/true);
                prev = cur;
                have_prev = true;
            }
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
}
