// lfll_prof: offline profiler report over an LFLL JSON-lines telemetry
// stream.
//
// The jsonl exporter interleaves two kinds of lines (telemetry/exporter):
//   {"ts_ms":N,"metrics":{"name{labels}":number,...}}   periodic snapshot
//   {"slow_op":{...}}                                   one slow capture
// lfll_top tails the first kind live; this tool reads the whole file
// after a run and renders the profiler's story:
//
//   * phase attribution — where sampled latency went (traverse /
//     cas_retry / safe_read / alloc / reclaim / backoff / bucket_split),
//     count, total, p50/p99 and share per phase, from the final snapshot;
//   * hot keys — the space-saving sketch's top-K ranks with per-key hit
//     and CAS-failure counts (and owning shard, when the store is
//     sharded);
//   * slow-op log — every capture the run produced, with its full phase
//     breakdown and the policy-health gauges at capture time.
//
// Usage:
//     LFLL_TELEMETRY=jsonl:/tmp/m.jsonl LFLL_SLOW_OP_NS=20000 ./bench/bench_e10_kv
//     ./build/tools/lfll_prof /tmp/m.jsonl
//     lfll_prof --selftest          parse + render built-in sample lines
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace {

const char* const kPhases[] = {"traverse", "cas_retry", "safe_read", "alloc",
                               "reclaim",  "backoff",   "bucket_split"};
constexpr int kPhaseCount = 7;

// ------------------------------------------------------------ parsing
// The exporter's schema is flat and regular; this is a schema parser,
// not a general JSON one (same stance as lfll_top).

bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
    if (i >= s.size() || s[i] != '"') return false;
    out.clear();
    for (++i; i < s.size(); ++i) {
        const char c = s[i];
        if (c == '"') {
            ++i;
            return true;
        }
        if (c == '\\') {
            if (++i >= s.size()) return false;
            out += s[i];
        } else {
            out += c;
        }
    }
    return false;
}

bool parse_number(const std::string& s, std::size_t& i, double& out) {
    char* end = nullptr;
    out = std::strtod(s.c_str() + i, &end);
    if (end == s.c_str() + i) return false;
    i = static_cast<std::size_t>(end - s.c_str());
    return true;
}

/// Parses a {"key":value,...} object starting at s[i] == '{' where each
/// value is a number, a string, or a nested object of the same shape.
/// Nested keys flatten with a dot: phases.traverse. Strings land in
/// `strings`, numbers in `nums`.
bool parse_flat_object(const std::string& s, std::size_t& i, const std::string& prefix,
                       std::map<std::string, double>& nums,
                       std::map<std::string, std::string>& strings) {
    if (i >= s.size() || s[i] != '{') return false;
    ++i;
    if (i < s.size() && s[i] == '}') {
        ++i;
        return true;
    }
    for (;;) {
        std::string key;
        if (!parse_string(s, i, key)) return false;
        if (i >= s.size() || s[i] != ':') return false;
        ++i;
        const std::string full = prefix.empty() ? key : prefix + "." + key;
        if (i < s.size() && s[i] == '{') {
            if (!parse_flat_object(s, i, full, nums, strings)) return false;
        } else if (i < s.size() && s[i] == '"') {
            std::string v;
            if (!parse_string(s, i, v)) return false;
            strings[full] = std::move(v);
        } else {
            double v = 0;
            if (!parse_number(s, i, v)) return false;
            nums[full] = v;
        }
        if (i >= s.size()) return false;
        if (s[i] == ',') {
            ++i;
            continue;
        }
        if (s[i] == '}') {
            ++i;
            return true;
        }
        return false;
    }
}

struct slow_op {
    std::map<std::string, double> nums;        // ts_ns, key, total_ns, ...
    std::map<std::string, std::string> strings;  // op
};

struct report_input {
    std::map<std::string, double> metrics;  // final snapshot wins
    std::uint64_t ts_ms = 0;
    std::size_t snapshots = 0;
    std::vector<slow_op> slow_ops;
};

bool consume_line(const std::string& line, report_input& in) {
    const char* ts_tag = "{\"ts_ms\":";
    const char* slow_tag = "{\"slow_op\":";
    if (line.compare(0, std::strlen(ts_tag), ts_tag) == 0) {
        std::size_t i = std::strlen(ts_tag);
        double ts = 0;
        if (!parse_number(line, i, ts)) return false;
        const char* m_tag = ",\"metrics\":";
        if (line.compare(i, std::strlen(m_tag), m_tag) != 0) return false;
        i += std::strlen(m_tag);
        std::map<std::string, double> nums;
        std::map<std::string, std::string> strings;
        if (!parse_flat_object(line, i, "", nums, strings)) return false;
        in.metrics = std::move(nums);  // later snapshots supersede earlier
        in.ts_ms = static_cast<std::uint64_t>(ts);
        in.snapshots++;
        return true;
    }
    if (line.compare(0, std::strlen(slow_tag), slow_tag) == 0) {
        std::size_t i = std::strlen(slow_tag);
        slow_op op;
        if (!parse_flat_object(line, i, "", op.nums, op.strings)) return false;
        in.slow_ops.push_back(std::move(op));
        return true;
    }
    return false;  // unknown line shape: skipped by the caller
}

// ---------------------------------------------------------- rendering

double metric_or(const report_input& in, const std::string& key, double dflt) {
    const auto it = in.metrics.find(key);
    return it == in.metrics.end() ? dflt : it->second;
}

std::string phase_key(const char* phase, const char* suffix) {
    return std::string("lfll_prof_phase_ns") + suffix + "{phase=\"" + phase + "\"}";
}

void render_phase_table(const report_input& in) {
    std::puts("== phase attribution (final snapshot) ==");
    double total = 0;
    for (const char* p : kPhases) total += metric_or(in, phase_key(p, "_sum"), 0);
    std::printf("%-14s %10s %12s %10s %10s %8s\n", "phase", "samples", "total_ms",
                "p50_ns", "p99_ns", "share%");
    for (const char* p : kPhases) {
        const double count = metric_or(in, phase_key(p, "_count"), 0);
        const double sum = metric_or(in, phase_key(p, "_sum"), 0);
        const double p50 = metric_or(in, phase_key(p, "_p50"), 0);
        const double p99 = metric_or(in, phase_key(p, "_p99"), 0);
        std::printf("%-14s %10.0f %12.3f %10.0f %10.0f %8.1f\n", p, count, sum / 1e6,
                    p50, p99, total > 0 ? 100.0 * sum / total : 0.0);
    }
    std::printf("\nsampled ops: %.0f   slow ops: %.0f\n\n",
                metric_or(in, "lfll_prof_sampled_ops_total", 0),
                metric_or(in, "lfll_prof_slow_ops_total", 0));
}

void render_hot_keys(const report_input& in) {
    std::puts("== hot keys (space-saving sketch, by sampled hits) ==");
    std::printf("%4s %20s %10s %14s %6s\n", "rank", "key", "hits", "cas_failures",
                "shard");
    int shown = 0;
    for (int r = 0;; ++r) {
        const std::string label = "{rank=\"" + std::to_string(r) + "\"}";
        const auto it = in.metrics.find("lfll_prof_hot_key" + label);
        if (it == in.metrics.end()) break;
        if (it->second < 0) continue;  // unused rank
        const double hits = metric_or(in, "lfll_prof_hot_key_hits" + label, 0);
        const double fails = metric_or(in, "lfll_prof_hot_key_cas_failures" + label, 0);
        const double shard = metric_or(in, "lfll_prof_hot_key_shard" + label, -1);
        char shard_s[16] = "-";
        if (shard >= 0) std::snprintf(shard_s, sizeof shard_s, "%.0f", shard);
        std::printf("%4d %20.0f %10.0f %14.0f %6s\n", r, it->second, hits, fails,
                    shard_s);
        ++shown;
    }
    if (shown == 0) std::puts("(no hot keys recorded — profiler off or no samples)");
    std::puts("");
}

void render_slow_ops(const report_input& in) {
    std::printf("== slow ops (%zu captured) ==\n", in.slow_ops.size());
    for (const slow_op& op : in.slow_ops) {
        const auto num = [&](const char* k) {
            const auto it = op.nums.find(k);
            return it == op.nums.end() ? 0.0 : it->second;
        };
        const auto it_op = op.strings.find("op");
        std::printf("%-7s key=%-12.0f shard=%-3.0f tid=%-3.0f total=%.0fns "
                    "cas_fails=%.0f\n",
                    it_op == op.strings.end() ? "?" : it_op->second.c_str(),
                    num("key"), num("shard"), num("tid"), num("total_ns"),
                    num("cas_failures"));
        std::printf("        phases:");
        for (const char* p : kPhases) {
            const double ns = num(("phases." + std::string(p)).c_str());
            if (ns > 0) std::printf(" %s=%.0fns", p, ns);
        }
        std::printf("\n        health: retired(hazard)=%.0f retired(epoch)=%.0f "
                    "free_list=%.0f epoch_lag=%.0f\n",
                    num("health.retired_backlog_hazard"),
                    num("health.retired_backlog_epoch"),
                    num("health.free_list_depth_refcount"), num("health.epoch_lag"));
    }
    std::puts("");
}

int run_report(const char* path) {
    std::FILE* f = std::fopen(path, "r");
    if (f == nullptr) {
        std::fprintf(stderr, "lfll_prof: cannot open %s\n", path);
        return 1;
    }
    report_input in;
    char buf[1 << 16];
    while (std::fgets(buf, sizeof buf, f) != nullptr) {
        (void)consume_line(buf, in);  // unknown/torn lines are skipped
    }
    std::fclose(f);
    if (in.snapshots == 0 && in.slow_ops.empty()) {
        std::fprintf(stderr, "lfll_prof: no profiler data in %s\n", path);
        return 1;
    }
    std::printf("lfll_prof — %zu snapshot(s), final ts_ms=%" PRIu64 "\n\n",
                in.snapshots, in.ts_ms);
    render_phase_table(in);
    render_hot_keys(in);
    render_slow_ops(in);
    return 0;
}

int run_selftest() {
    const char* lines[] = {
        "{\"ts_ms\":1754265600000,\"metrics\":{"
        "\"lfll_prof_phase_ns_count{phase=\\\"traverse\\\"}\":100,"
        "\"lfll_prof_phase_ns_sum{phase=\\\"traverse\\\"}\":250000,"
        "\"lfll_prof_phase_ns_p50{phase=\\\"traverse\\\"}\":2047,"
        "\"lfll_prof_phase_ns_p99{phase=\\\"traverse\\\"}\":8191,"
        "\"lfll_prof_phase_ns_count{phase=\\\"cas_retry\\\"}\":12,"
        "\"lfll_prof_phase_ns_sum{phase=\\\"cas_retry\\\"}\":50000,"
        "\"lfll_prof_sampled_ops_total\":100,"
        "\"lfll_prof_slow_ops_total\":1,"
        "\"lfll_prof_hot_key{rank=\\\"0\\\"}\":42,"
        "\"lfll_prof_hot_key_hits{rank=\\\"0\\\"}\":17,"
        "\"lfll_prof_hot_key_cas_failures{rank=\\\"0\\\"}\":3,"
        "\"lfll_prof_hot_key_shard{rank=\\\"0\\\"}\":2,"
        "\"lfll_prof_hot_key{rank=\\\"1\\\"}\":-1}}",
        "{\"slow_op\":{\"ts_ns\":123456,\"op\":\"insert\",\"key\":42,\"tid\":1,"
        "\"shard\":2,\"total_ns\":150000,\"cas_failures\":4,\"phases\":{"
        "\"traverse\":90000,\"cas_retry\":50000,\"safe_read\":0,\"alloc\":10000,"
        "\"reclaim\":0,\"backoff\":0,\"bucket_split\":0},\"health\":{"
        "\"retired_backlog_hazard\":0,\"retired_backlog_epoch\":64,"
        "\"free_list_depth_refcount\":512,\"epoch_lag\":1}}}",
    };
    report_input in;
    for (const char* l : lines) {
        if (!consume_line(l, in)) {
            std::fprintf(stderr, "lfll_prof: selftest parse failed\n");
            return 1;
        }
    }
    if (in.snapshots != 1 || in.slow_ops.size() != 1 ||
        in.metrics.at("lfll_prof_hot_key{rank=\"0\"}") != 42 ||
        in.slow_ops[0].nums.at("phases.cas_retry") != 50000 ||
        in.slow_ops[0].strings.at("op") != "insert") {
        std::fprintf(stderr, "lfll_prof: selftest check failed\n");
        return 1;
    }
    render_phase_table(in);
    render_hot_keys(in);
    render_slow_ops(in);
    std::puts("lfll_prof: selftest ok");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc == 2 && std::strcmp(argv[1], "--selftest") == 0) return run_selftest();
    if (argc != 2) {
        std::fprintf(stderr,
                     "usage: lfll_prof <metrics.jsonl>\n"
                     "       lfll_prof --selftest\n");
        return 2;
    }
    return run_report(argv[1]);
}
