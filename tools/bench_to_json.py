#!/usr/bin/env python3
"""Convert bench harness output (LFLL_BENCH_CSV=1 mode) to a JSON artifact.

The harness emits one `== title ==` banner per table followed by CSV rows
whose numeric cells use fmt_si suffixes (k/M/G). This script parses that
stream into a machine-readable document so CI runs accumulate a perf
trajectory:

    LFLL_BENCH_CSV=1 ./bench_e9_alloc | bench_to_json.py bench_e9_alloc > BENCH_alloc.json

Numeric-looking cells are emitted both raw (`"17.9M"`) and decoded
(`17900000.0`) under `<column>` and `<column>_value`.
"""
import json
import re
import sys

SI = {"k": 1e3, "M": 1e6, "G": 1e9}
NUM_RE = re.compile(r"^(-?\d+(?:\.\d+)?)([kMG]?)$")


def decode(cell):
    m = NUM_RE.match(cell.strip())
    if not m:
        return None
    return float(m.group(1)) * SI.get(m.group(2), 1.0)


def parse(stream):
    tables = []
    headers = None
    for raw in stream:
        line = raw.rstrip("\n")
        banner = re.match(r"^== (.*) ==$", line)
        if banner:
            tables.append({"title": banner.group(1), "rows": []})
            headers = None
            continue
        if not tables or not line.strip():
            continue
        cells = line.split(",")
        if headers is None:
            headers = cells
            continue
        if len(cells) != len(headers):
            continue  # stray non-CSV output (exporter noise etc.)
        row = {}
        for key, cell in zip(headers, cells):
            row[key] = cell
            value = decode(cell)
            if value is not None:
                row[key + "_value"] = value
        tables[-1]["rows"].append(row)
    return tables


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "bench"
    doc = {"bench": name, "tables": parse(sys.stdin)}
    json.dump(doc, sys.stdout, indent=2)
    sys.stdout.write("\n")
    if not doc["tables"] or not any(t["rows"] for t in doc["tables"]):
        sys.stderr.write("bench_to_json: no tables parsed from input\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
