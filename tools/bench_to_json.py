#!/usr/bin/env python3
"""Convert bench harness output (LFLL_BENCH_CSV=1 mode) to a JSON artifact.

The harness emits one `== title ==` banner per table followed by CSV rows
whose numeric cells use fmt_si suffixes (k/M/G). This script parses that
stream into a machine-readable document so CI runs accumulate a perf
trajectory:

    LFLL_BENCH_CSV=1 ./bench_e9_alloc | bench_to_json.py bench_e9_alloc > BENCH_alloc.json

Numeric-looking cells are emitted both raw (`"17.9M"`) and decoded
(`17900000.0`) under `<column>` and `<column>_value`. Percent cells
(bench_e11_rangequery's ratio columns) decode to their numeric part:
`"85.0%"` -> `85.0`.

Google-benchmark console output (bench_e7_saferead) is recognized in the
same stream: `BM_*` rows land in a table titled "google-benchmark" with
time/cpu in nanoseconds, iteration counts, and any UserCounters
(`items_per_second=34.2M/s` decodes to 34.2e6 under
`items_per_second_value`). The two formats can be concatenated:

    { LFLL_BENCH_CSV=1 ./bench_e1_vs_locks; ./bench_e7_saferead; } \\
        | bench_to_json.py bench_traverse > BENCH_traverse.json
"""
import json
import re
import sys

SI = {"k": 1e3, "M": 1e6, "G": 1e9}
NUM_RE = re.compile(r"^(-?\d+(?:\.\d+)?)([kMG]?|%)$")

# One google-benchmark console row:
#   BM_Name      30357 ns        29887 ns         5800 counter=1.2M/s ...
GBENCH_RE = re.compile(
    r"^(BM_\S+)\s+(-?[\d.]+) (\w+)\s+(-?[\d.]+) (\w+)\s+(\d+)(?:\s+(\S.*))?$"
)
GBENCH_TITLE = "google-benchmark"


def decode(cell):
    m = NUM_RE.match(cell.strip())
    if not m:
        return None
    return float(m.group(1)) * SI.get(m.group(2), 1.0)  # "%" scales by 1


def gbench_row(m):
    row = {
        "benchmark": m.group(1),
        "time": m.group(2) + " " + m.group(3),
        "time_value": float(m.group(2)),
        "time_unit": m.group(3),
        "cpu": m.group(4) + " " + m.group(5),
        "cpu_value": float(m.group(4)),
        "iterations": m.group(6),
        "iterations_value": float(m.group(6)),
    }
    for counter in (m.group(7) or "").split():
        if "=" not in counter:
            continue
        key, val = counter.split("=", 1)
        row[key] = val
        value = decode(val[:-2] if val.endswith("/s") else val)
        if value is not None:
            row[key + "_value"] = value
    return row


def parse(stream):
    tables = []
    headers = None
    for raw in stream:
        line = raw.rstrip("\n")
        banner = re.match(r"^== (.*) ==$", line)
        if banner:
            tables.append({"title": banner.group(1), "rows": []})
            headers = None
            continue
        gbench = GBENCH_RE.match(line)
        if gbench:
            if not tables or tables[-1]["title"] != GBENCH_TITLE:
                tables.append({"title": GBENCH_TITLE, "rows": []})
                headers = None
            tables[-1]["rows"].append(gbench_row(gbench))
            continue
        if not tables or tables[-1]["title"] == GBENCH_TITLE or not line.strip():
            continue
        cells = line.split(",")
        if headers is None:
            headers = cells
            continue
        if len(cells) != len(headers):
            continue  # stray non-CSV output (exporter noise etc.)
        row = {}
        for key, cell in zip(headers, cells):
            row[key] = cell
            value = decode(cell)
            if value is not None:
                row[key + "_value"] = value
        tables[-1]["rows"].append(row)
    return tables


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "bench"
    doc = {"bench": name, "tables": parse(sys.stdin)}
    json.dump(doc, sys.stdout, indent=2)
    sys.stdout.write("\n")
    if not doc["tables"] or not any(t["rows"] for t in doc["tables"]):
        sys.stderr.write("bench_to_json: no tables parsed from input\n")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
