// soak: long-running randomized reliability driver.
//
// Runs the full mixed workload against every structure in rotation —
// including the sorted-list dictionary under all three memory policies —
// with per-round ledger verification and quiescent audits, until the
// time budget expires. Intended for hours-long burn-in runs that CI's
// short test suite cannot provide:
//
//     ./build/tools/soak 3600          # one hour
//     ./build/tools/soak 60 42         # one minute, seed 42
//
// Telemetry: a once-per-second ticker prints live throughput and the
// reclamation health gauges (retired backlog per policy, free-list
// depth); set LFLL_TELEMETRY=jsonl:<path> to also stream registry
// snapshots for `tools/lfll_top`, and build with -DLFLL_TRACE=ON to get
// a Chrome/Perfetto trace of the final window (LFLL_TRACE_OUT, default
// soak_trace.json) on exit.
//
// Exit code 0 = every round verified; nonzero = invariant violation
// (details on stderr).
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "lfll/baseline/harris_michael_list.hpp"
#include "lfll/core/audit.hpp"
#include "lfll/lfll.hpp"
#include "lfll/telemetry/exporter.hpp"
#include "lfll/telemetry/trace.hpp"

namespace {

using namespace lfll;

struct round_config {
    int threads;
    int keys;
    int ops_per_thread;
};

int failures = 0;

/// Completed-op count for the live ticker (bumped in chunks per thread).
std::atomic<std::uint64_t> soak_ops{0};

void fail(const char* what) {
    std::fprintf(stderr, "SOAK FAILURE: %s\n", what);
    ++failures;
}

/// Ledger-verified mixed run against any set-like structure.
template <typename Insert, typename Erase, typename Contains>
void ledger_round(std::uint64_t seed, const round_config& cfg, Insert&& ins, Erase&& ers,
                  Contains&& has) {
    std::vector<std::vector<long>> insc(cfg.threads, std::vector<long>(cfg.keys, 0));
    std::vector<std::vector<long>> delc(cfg.threads, std::vector<long>(cfg.keys, 0));
    std::atomic<bool> go{false};
    std::vector<std::thread> ts;
    for (int t = 0; t < cfg.threads; ++t) {
        ts.emplace_back([&, t] {
            xorshift64 rng(seed + static_cast<std::uint64_t>(t) * 7919);
            while (!go.load(std::memory_order_acquire)) {
            }
            for (int i = 0; i < cfg.ops_per_thread; ++i) {
                const int k = static_cast<int>(rng.next_below(cfg.keys));
                switch (rng.next() % 3) {
                    case 0:
                        if (ins(k)) insc[t][k]++;
                        break;
                    case 1:
                        if (ers(k)) delc[t][k]++;
                        break;
                    default:
                        (void)has(k);
                        break;
                }
            }
            soak_ops.fetch_add(static_cast<std::uint64_t>(cfg.ops_per_thread),
                               std::memory_order_relaxed);
        });
    }
    go.store(true, std::memory_order_release);
    for (auto& th : ts) th.join();
    for (int k = 0; k < cfg.keys; ++k) {
        long balance = 0;
        for (int t = 0; t < cfg.threads; ++t) balance += insc[t][k] - delc[t][k];
        if (balance < 0 || balance > 1) fail("ledger balance out of {0,1}");
        if ((balance == 1) != has(k)) fail("final membership mismatch");
    }
}

/// Mixed run + quiescent audit of the sorted-list dictionary under one
/// memory policy. Running all three per cycle keeps every policy's
/// reclamation gauges (retired backlog, epoch lag, hazard occupancy)
/// live in the telemetry stream.
template <typename Policy>
void dict_round(std::uint64_t seed, const round_config& cfg) {
    sorted_list_map<int, int, std::less<int>, Policy> m(2048);
    ledger_round(
        seed, cfg, [&](int k) { return m.insert(k, k); },
        [&](int k) { return m.erase(k); }, [&](int k) { return m.contains(k); });
    m.list().pool().drain_retired();
    auto r = audit_list(m.list());
    if (!r.ok)
        fail(("sorted_list_map<" + std::string(Policy::name) + "> audit: " + r.error)
                 .c_str());
}

void one_cycle(std::uint64_t seed, const round_config& cfg) {
    dict_round<valois_refcount>(seed, cfg);
    dict_round<hazard_policy>(seed + 5, cfg);
    dict_round<epoch_policy>(seed + 6, cfg);
    {
        hash_map<int, int> m(32, 16);
        ledger_round(
            seed + 1, cfg, [&](int k) { return m.insert(k, k); },
            [&](int k) { return m.erase(k); }, [&](int k) { return m.contains(k); });
        for (std::size_t b = 0; b < m.bucket_count(); ++b) {
            auto r = audit_list(m.bucket_at(b).list());
            if (!r.ok) fail(("hash_map bucket audit: " + r.error).c_str());
        }
    }
    {
        skip_list_map<int, int> m(4096, 10);
        ledger_round(
            seed + 2, cfg, [&](int k) { return m.insert(k, k); },
            [&](int k) { return m.erase(k); }, [&](int k) { return m.contains(k); });
        std::vector<valois_list<skip_list_map<int, int>::entry>*> lists;
        for (int i = 0; i < m.max_level(); ++i) lists.push_back(&m.level(i));
        auto r = audit_shared(m.pool(), lists);
        if (!r.ok) fail(("skip_list audit: " + r.error).c_str());
    }
    {
        bst_set<int> m(4096);
        ledger_round(
            seed + 3, cfg, [&](int k) { return m.insert(k); },
            [&](int k) { return m.erase(k); }, [&](int k) { return m.contains(k); });
        const std::string err = m.validate_slow();
        if (!err.empty()) fail(("bst audit: " + err).c_str());
    }
    {
        harris_michael_list<int, int> m;
        ledger_round(
            seed + 4, cfg, [&](int k) { return m.insert(k, k); },
            [&](int k) { return m.erase(k); }, [&](int k) { return m.contains(k); });
    }
    // Queue conservation round.
    {
        valois_queue<long> q(1024);
        std::atomic<long> in{0}, out{0};
        std::vector<std::thread> ts;
        for (int t = 0; t < cfg.threads; ++t) {
            ts.emplace_back([&, t] {
                xorshift64 rng(seed + 100 + static_cast<std::uint64_t>(t));
                for (int i = 0; i < cfg.ops_per_thread; ++i) {
                    if (rng.next() % 2 == 0) {
                        q.enqueue(1);
                        in.fetch_add(1);
                    } else if (q.dequeue().has_value()) {
                        out.fetch_add(1);
                    }
                }
                soak_ops.fetch_add(static_cast<std::uint64_t>(cfg.ops_per_thread),
                                   std::memory_order_relaxed);
            });
        }
        for (auto& th : ts) th.join();
        long rest = 0;
        while (q.dequeue().has_value()) ++rest;
        if (rest != in.load() - out.load()) fail("queue conservation");
    }
}

std::int64_t gauge_value(const char* name, const char* labels = "") {
    return telemetry::registry::global().get_gauge(name, labels).value();
}

/// Once-per-second live ticker: throughput since the last tick plus the
/// reclamation health gauges for every policy.
void ticker_loop(const std::atomic<bool>& done, const std::atomic<long>& cycles) {
    std::uint64_t last_ops = 0;
    auto last = std::chrono::steady_clock::now();
    const auto start = last;
    while (!done.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1000));
        const auto now = std::chrono::steady_clock::now();
        const std::uint64_t ops = soak_ops.load(std::memory_order_relaxed);
        const double dt = std::chrono::duration<double>(now - last).count();
        const double rate =
            dt > 0 ? static_cast<double>(ops - last_ops) / dt / 1e6 : 0.0;
        std::printf(
            "soak %5.0fs | %ld cycles | %6.2f Mops/s | backlog v/h/e "
            "%lld/%lld/%lld | free %lld | epoch lag %lld | hp slots %lld\n",
            std::chrono::duration<double>(now - start).count(), cycles.load(), rate,
            static_cast<long long>(
                gauge_value("lfll_retired_backlog", "policy=\"valois_refcount\"")),
            static_cast<long long>(
                gauge_value("lfll_retired_backlog", "policy=\"hazard\"")),
            static_cast<long long>(
                gauge_value("lfll_retired_backlog", "policy=\"epoch\"")),
            static_cast<long long>(
                gauge_value("lfll_free_list_depth", "policy=\"valois_refcount\"")),
            static_cast<long long>(gauge_value("lfll_epoch_lag", "policy=\"epoch\"")),
            static_cast<long long>(
                gauge_value("lfll_hazard_slots_occupied", "policy=\"hazard\"")));
        std::fflush(stdout);
        last_ops = ops;
        last = now;
    }
}

}  // namespace

int main(int argc, char** argv) {
    const double seconds = argc > 1 ? std::atof(argv[1]) : 10.0;
    std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 20260704ULL;

    auto exporter = telemetry::exporter_from_env();
    std::atomic<bool> done{false};
    std::atomic<long> cycles{0};
    std::thread ticker(ticker_loop, std::cref(done), std::cref(cycles));

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::duration<double>(seconds);
    const round_config configs[] = {
        {4, 32, 3000}, {8, 8, 2000}, {2, 256, 4000}, {6, 1, 1500},
    };
    while (std::chrono::steady_clock::now() < deadline && failures == 0) {
        one_cycle(seed, configs[cycles.load() % (sizeof configs / sizeof configs[0])]);
        seed = splitmix64(seed).next();
        cycles.fetch_add(1);
    }

    done.store(true, std::memory_order_release);
    ticker.join();
    if (exporter != nullptr) exporter->stop();
    if constexpr (telemetry::trace_enabled) {
        const char* out = std::getenv("LFLL_TRACE_OUT");
        const std::string path = out != nullptr ? out : "soak_trace.json";
        telemetry::write_chrome_trace(path);
        std::printf("soak: flight-recorder trace written to %s\n", path.c_str());
    }
    std::printf("soak finished: %ld cycles, %d failures, %llu ops\n", cycles.load(),
                failures, static_cast<unsigned long long>(soak_ops.load()));
    return failures == 0 ? 0 : 1;
}
